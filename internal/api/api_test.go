package api

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/emissions"
	"repro/internal/exporter"
	"repro/internal/gpusim"
	"repro/internal/hw"
	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/relstore"
	"repro/internal/resourcemanager"
	"repro/internal/rules"
	"repro/internal/rules/ceemsrules"
	"repro/internal/scrape"
	"repro/internal/slurmsim"
	"repro/internal/tsdb"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
var _ = gpusim.Handler

// testRig is a full miniature CEEMS deployment over one SLURM cluster.
type testRig struct {
	sched   *slurmsim.Scheduler
	db      *tsdb.DB
	sm      *scrape.Manager
	rm      *rules.Manager
	store   *relstore.DB
	updater *Updater
	server  *Server
	clock   time.Time
}

type rigFetcher struct{ exps map[string]*exporter.Exporter }

func (f *rigFetcher) Fetch(_ context.Context, target string) (io.ReadCloser, error) {
	return io.NopCloser(strings.NewReader(f.exps[target].Render())), nil
}

func newRig(t *testing.T, nNodes int) *testRig {
	t.Helper()
	var nodes []*hw.Node
	exps := map[string]*exporter.Exporter{}
	var targets []string
	for i := 0; i < nNodes; i++ {
		spec := hw.DefaultIntelSpec("node" + string(rune('a'+i)))
		spec.NoiseFrac = 0
		n, err := hw.NewNode(spec, t0)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		exps[spec.Name] = exporter.New(
			&exporter.CgroupCollector{FS: n.FS, Layout: exporter.SlurmLayout()},
			&exporter.RAPLCollector{FS: n.FS},
			&exporter.IPMICollector{Reader: n},
			&exporter.NodeCollector{FS: n.FS},
		)
		targets = append(targets, spec.Name)
	}
	sched, err := slurmsim.NewScheduler("testcluster", t0, &slurmsim.Partition{Name: "cpu", Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	rig := &testRig{sched: sched, db: db, clock: t0}
	rig.sm = &scrape.Manager{
		Dest:    db,
		Fetcher: &rigFetcher{exps: exps},
		Groups: []*scrape.TargetGroup{{
			JobName: "ceems", Targets: targets,
			Labels: map[string]string{"nodeclass": "intel", "cluster": "testcluster"},
		}},
		Now: func() time.Time { return rig.clock },
	}
	rig.rm = &rules.Manager{
		Engine: rules.NewEngine(nil), Query: db, Dest: db,
		Groups: []*rules.Group{ceemsrules.IntelGroup(ceemsrules.DefaultOptions())},
	}
	store, err := relstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range Schemas() {
		if err := store.CreateTable(s); err != nil {
			t.Fatal(err)
		}
	}
	rig.store = store
	rig.updater = &Updater{
		Store: store,
		Fetchers: []resourcemanager.Fetcher{
			&resourcemanager.Local{Cluster: "testcluster", Kind: model.ManagerSLURM, Source: sched},
		},
		Query:           db,
		Factor:          emissions.OWID{},
		Zone:            "FR",
		ShortUnitCutoff: 30 * time.Second,
		Cleaner:         db,
	}
	rig.server = &Server{Store: store, Updater: rig.updater}
	return rig
}

// step advances 15 simulated seconds: scheduler+hardware, scrape, rules.
func (r *testRig) step(t *testing.T) {
	t.Helper()
	r.sched.Advance(15 * time.Second)
	r.clock = r.clock.Add(15 * time.Second)
	r.sm.ScrapeAll(context.Background())
	if err := r.rm.EvalAll(r.clock); err != nil {
		t.Fatalf("rules: %v", err)
	}
}

func TestUpdaterEndToEnd(t *testing.T) {
	rig := newRig(t, 2)
	_, err := rig.sched.Submit(slurmsim.JobSpec{
		Name: "sim", User: "alice", Account: "projA", Partition: "cpu",
		CPUsPerNode: 32, MemPerNode: 64 << 30, Duration: 10 * time.Minute,
		CPUUtil: func(time.Duration) float64 { return 0.8 },
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.sched.Submit(slurmsim.JobSpec{
		Name: "sim2", User: "bob", Account: "projA", Partition: "cpu",
		CPUsPerNode: 16, MemPerNode: 32 << 30, Duration: 10 * time.Minute,
		CPUUtil: func(time.Duration) float64 { return 0.5 },
	})
	for i := 0; i < 16; i++ { // 4 minutes
		rig.step(t)
	}
	if err := rig.updater.Update(context.Background(), rig.clock); err != nil {
		t.Fatalf("Update: %v", err)
	}

	// Unit rows exist with aggregates.
	row, ok, err := rig.store.Get(TableUnits, "testcluster/slurm/1")
	if err != nil || !ok {
		t.Fatalf("unit row: %v %v", ok, err)
	}
	u := rowToUnit(row)
	if u.User != "alice" || u.State != model.UnitRunning {
		t.Errorf("unit = %+v", u)
	}
	if u.Aggregate.TotalEnergyJoules <= 0 {
		t.Errorf("no energy attributed: %+v", u.Aggregate)
	}
	if u.Aggregate.EmissionsGrams <= 0 {
		t.Error("no emissions")
	}
	if u.Aggregate.AvgCPUUsage < 0.7 || u.Aggregate.AvgCPUUsage > 0.9 {
		t.Errorf("avg cpu usage = %v, want ~0.8", u.Aggregate.AvgCPUUsage)
	}
	// alice's 32-cpu 80% job should out-consume bob's 16-cpu 50% job.
	row2, _, _ := rig.store.Get(TableUnits, "testcluster/slurm/2")
	u2 := rowToUnit(row2)
	if u2.Aggregate.TotalEnergyJoules >= u.Aggregate.TotalEnergyJoules {
		t.Errorf("energy ordering wrong: %v vs %v",
			u2.Aggregate.TotalEnergyJoules, u.Aggregate.TotalEnergyJoules)
	}

	// Rollups.
	urow, ok, _ := rig.store.Get(TableUsers, "testcluster/alice")
	if !ok {
		t.Fatal("user rollup missing")
	}
	if urow["num_units"].(int64) != 1 || urow["total_energy_j"].(float64) <= 0 {
		t.Errorf("user rollup = %v", urow)
	}
	prow, ok, _ := rig.store.Get(TableProjects, "testcluster/projA")
	if !ok || prow["num_units"].(int64) != 2 {
		t.Errorf("project rollup = %v", prow)
	}

	// Incremental update: energy grows between passes.
	before := u.Aggregate.TotalEnergyJoules
	for i := 0; i < 8; i++ {
		rig.step(t)
	}
	if err := rig.updater.Update(context.Background(), rig.clock); err != nil {
		t.Fatal(err)
	}
	row, _, _ = rig.store.Get(TableUnits, "testcluster/slurm/1")
	after := rowToUnit(row).Aggregate.TotalEnergyJoules
	if after <= before {
		t.Errorf("energy did not accumulate: %v -> %v", before, after)
	}
}

func TestTSDBCleanupOfShortUnits(t *testing.T) {
	rig := newRig(t, 1)
	rig.sched.Submit(slurmsim.JobSpec{
		Name: "short", User: "u", Account: "p", Partition: "cpu",
		CPUsPerNode: 4, MemPerNode: 1 << 30, Duration: 15 * time.Second,
	})
	for i := 0; i < 8; i++ {
		rig.step(t)
	}
	seriesBefore := rig.db.Stats().NumSeries
	if err := rig.updater.Update(context.Background(), rig.clock); err != nil {
		t.Fatal(err)
	}
	if rig.updater.SeriesDeleted == 0 {
		t.Error("short unit series not cleaned")
	}
	if rig.db.Stats().NumSeries >= seriesBefore {
		t.Error("cardinality did not drop")
	}
	// Aggregates survive in the DB even though series are gone.
	row, ok, _ := rig.store.Get(TableUnits, "testcluster/slurm/1")
	if !ok || rowToUnit(row).State != model.UnitCompleted {
		t.Error("unit row lost after cleanup")
	}
}

func doReq(t *testing.T, h http.Handler, path, user string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if user != "" {
		req.Header.Set("X-Grafana-User", user)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestServerAccessControl(t *testing.T) {
	rig := newRig(t, 2)
	rig.sched.Submit(slurmsim.JobSpec{Name: "a", User: "alice", Account: "p1", Partition: "cpu",
		CPUsPerNode: 4, MemPerNode: 1 << 30, Duration: 10 * time.Minute})
	rig.sched.Submit(slurmsim.JobSpec{Name: "b", User: "bob", Account: "p2", Partition: "cpu",
		CPUsPerNode: 4, MemPerNode: 1 << 30, Duration: 10 * time.Minute})
	for i := 0; i < 10; i++ {
		rig.step(t)
	}
	rig.updater.Update(context.Background(), rig.clock)
	rig.server.AddAdmin("root")
	h := rig.server.Handler()

	// Alice sees only her unit.
	rec := doReq(t, h, "/api/v1/units", "alice")
	var units []model.Unit
	json.Unmarshal(rec.Body.Bytes(), &units)
	if len(units) != 1 || units[0].User != "alice" {
		t.Errorf("alice units = %+v", units)
	}
	// Admin sees all.
	rec = doReq(t, h, "/api/v1/units", "root")
	json.Unmarshal(rec.Body.Bytes(), &units)
	if len(units) != 2 {
		t.Errorf("admin units = %d", len(units))
	}
	// Admin filters by user.
	rec = doReq(t, h, "/api/v1/units?user=bob", "root")
	json.Unmarshal(rec.Body.Bytes(), &units)
	if len(units) != 1 || units[0].User != "bob" {
		t.Errorf("filtered units = %+v", units)
	}
	// No identity → 401.
	if rec := doReq(t, h, "/api/v1/units", ""); rec.Code != http.StatusUnauthorized {
		t.Errorf("anonymous status = %d", rec.Code)
	}
	// Users rollup restricted.
	rec = doReq(t, h, "/api/v1/users", "alice")
	var rows []map[string]any
	json.Unmarshal(rec.Body.Bytes(), &rows)
	if len(rows) != 1 {
		t.Errorf("alice user rows = %v", rows)
	}
	// Projects: alice only sees p1.
	rec = doReq(t, h, "/api/v1/projects", "alice")
	json.Unmarshal(rec.Body.Bytes(), &rows)
	if len(rows) != 1 || rows[0]["project"] != "p1" {
		t.Errorf("alice projects = %v", rows)
	}
}

func TestVerifyEndpoint(t *testing.T) {
	rig := newRig(t, 1)
	rig.sched.Submit(slurmsim.JobSpec{Name: "a", User: "alice", Account: "p", Partition: "cpu",
		CPUsPerNode: 4, MemPerNode: 1 << 30, Duration: 10 * time.Minute})
	for i := 0; i < 4; i++ {
		rig.step(t)
	}
	rig.updater.Update(context.Background(), rig.clock)
	rig.server.AddAdmin("root")
	h := rig.server.Handler()

	cases := []struct {
		user, uuid string
		code       int
	}{
		{"alice", "testcluster/slurm/1", 200},
		{"alice", "1", 200}, // bare ID
		{"bob", "testcluster/slurm/1", 403},
		{"bob", "1", 403},
		{"root", "1", 200},               // admin bypass
		{"alice", "nonexistent-id", 403}, // unknown unit denied
	}
	for _, c := range cases {
		rec := doReq(t, h, "/api/v1/units/verify?user="+c.user+"&uuid="+c.uuid, c.user)
		if rec.Code != c.code {
			t.Errorf("verify(%s, %s) = %d, want %d", c.user, c.uuid, rec.Code, c.code)
		}
	}
	if rec := doReq(t, h, "/api/v1/units/verify?user=alice", "alice"); rec.Code != 400 {
		t.Errorf("missing uuid = %d", rec.Code)
	}
}

func TestHealthEndpoint(t *testing.T) {
	rig := newRig(t, 1)
	rec := doReq(t, rig.server.Handler(), "/api/v1/health", "")
	if rec.Code != 200 {
		t.Fatalf("health = %d", rec.Code)
	}
	var body map[string]any
	json.Unmarshal(rec.Body.Bytes(), &body)
	if body["status"] != "ok" {
		t.Errorf("health body = %v", body)
	}
}

func TestSlurmDBDFetcher(t *testing.T) {
	rig := newRig(t, 1)
	rig.sched.Submit(slurmsim.JobSpec{Name: "j", User: "u", Account: "a", Partition: "cpu",
		CPUsPerNode: 4, MemPerNode: 1 << 30, Duration: time.Minute})
	rig.step(t)
	srv := httptest.NewServer(rig.sched.DBDHandler())
	defer srv.Close()
	f := &resourcemanager.SlurmDBD{Cluster: "testcluster", BaseURL: srv.URL}
	units, err := f.FetchUnits(context.Background(), t0)
	if err != nil {
		t.Fatalf("FetchUnits: %v", err)
	}
	if len(units) != 1 || units[0].User != "u" {
		t.Errorf("units = %+v", units)
	}
	if f.Manager() != model.ManagerSLURM || f.ClusterID() != "testcluster" {
		t.Error("fetcher metadata wrong")
	}
}

func TestUnitRowRoundTrip(t *testing.T) {
	u := model.Unit{
		UUID: "c/slurm/9", ID: "9", Cluster: "c", Manager: model.ManagerSLURM,
		Name: "n", User: "u", Project: "p", Partition: "part",
		State: model.UnitCompleted, CreatedAt: 1, StartedAt: 2, EndedAt: 3,
		ElapsedSec: 1, CPUs: 4, MemoryBytes: 1024, GPUs: 2,
		GPUOrdinals: []int{0, 3}, Nodes: []string{"n1", "n2"}, ExitCode: 1,
		Aggregate: model.UsageAggregate{
			AvgCPUUsage: 0.5, CPUTimeSec: 100, TotalEnergyJoules: 999,
			EmissionsGrams: 1.5, NumSamples: 10,
		},
	}
	got := rowToUnit(unitToRow(u))
	if got.UUID != u.UUID || got.User != u.User || got.State != u.State {
		t.Errorf("metadata round trip: %+v", got)
	}
	if len(got.GPUOrdinals) != 2 || got.GPUOrdinals[1] != 3 {
		t.Errorf("gpu ordinals = %v", got.GPUOrdinals)
	}
	if got.Aggregate != u.Aggregate {
		t.Errorf("aggregate round trip: %+v", got.Aggregate)
	}
}

var _ = labels.MetricName
