// Package expofmt implements the Prometheus text exposition format
// (version 0.0.4): the wire format emitted by exporters and parsed by the
// scrape loop. It supports HELP/TYPE comments, label escaping, explicit
// timestamps and the counter/gauge metric kinds used by CEEMS.
package expofmt

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/labels"
)

// MetricType is the TYPE annotation of a metric family.
type MetricType string

const (
	TypeCounter MetricType = "counter"
	TypeGauge   MetricType = "gauge"
	TypeUntyped MetricType = "untyped"
)

// Metric is a single exposition line: a labelled value with optional
// timestamp (TS==0 means "no timestamp", as scrape time applies).
type Metric struct {
	Labels labels.Labels
	Value  float64
	TS     int64 // Unix ms; 0 = absent
}

// Family groups metrics sharing a name, HELP and TYPE.
type Family struct {
	Name    string
	Help    string
	Type    MetricType
	Metrics []Metric
}

// Writer serializes families in exposition format.
type Writer struct {
	w *bufio.Writer
}

// NewWriter returns a Writer on w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// WriteFamily writes one metric family.
func (e *Writer) WriteFamily(f *Family) error {
	if f.Help != "" {
		fmt.Fprintf(e.w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
	}
	typ := f.Type
	if typ == "" {
		typ = TypeUntyped
	}
	fmt.Fprintf(e.w, "# TYPE %s %s\n", f.Name, typ)
	for _, m := range f.Metrics {
		if err := e.writeMetric(f.Name, m); err != nil {
			return err
		}
	}
	return nil
}

func (e *Writer) writeMetric(name string, m Metric) error {
	e.w.WriteString(name)
	// Labels, excluding __name__, sorted.
	var ls labels.Labels
	for _, l := range m.Labels {
		if l.Name != labels.MetricName {
			ls = append(ls, l)
		}
	}
	sort.Sort(ls)
	if len(ls) > 0 {
		e.w.WriteByte('{')
		for i, l := range ls {
			if i > 0 {
				e.w.WriteByte(',')
			}
			e.w.WriteString(l.Name)
			e.w.WriteString(`="`)
			e.w.WriteString(escapeValue(l.Value))
			e.w.WriteByte('"')
		}
		e.w.WriteByte('}')
	}
	e.w.WriteByte(' ')
	e.w.WriteString(formatValue(m.Value))
	if m.TS != 0 {
		e.w.WriteByte(' ')
		e.w.WriteString(strconv.FormatInt(m.TS, 10))
	}
	e.w.WriteByte('\n')
	return nil
}

// Flush flushes buffered output.
func (e *Writer) Flush() error { return e.w.Flush() }

func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Parse reads an entire exposition payload and returns the metric families
// in order of first appearance. Metric name is stored in the __name__ label
// of each metric as well.
func Parse(r io.Reader) ([]*Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	fams := map[string]*Family{}
	var order []string
	lineNo := 0
	getFam := func(name string) *Family {
		f, ok := fams[name]
		if !ok {
			f = &Family{Name: name, Type: TypeUntyped}
			fams[name] = f
			order = append(order, name)
		}
		return f
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimSpace(line[1:])
			switch {
			case strings.HasPrefix(rest, "HELP "):
				parts := strings.SplitN(rest[len("HELP "):], " ", 2)
				f := getFam(parts[0])
				if len(parts) == 2 {
					f.Help = unescapeHelp(parts[1])
				}
			case strings.HasPrefix(rest, "TYPE "):
				parts := strings.SplitN(rest[len("TYPE "):], " ", 2)
				f := getFam(parts[0])
				if len(parts) == 2 {
					f.Type = MetricType(strings.TrimSpace(parts[1]))
				}
			}
			continue
		}
		m, name, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("expofmt: line %d: %w", lineNo, err)
		}
		f := getFam(name)
		f.Metrics = append(f.Metrics, m)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]*Family, 0, len(order))
	for _, n := range order {
		out = append(out, fams[n])
	}
	return out, nil
}

func parseSample(line string) (Metric, string, error) {
	var m Metric
	// Metric name runs to '{' or whitespace.
	i := strings.IndexAny(line, "{ \t")
	if i < 0 {
		return m, "", fmt.Errorf("malformed sample %q", line)
	}
	name := line[:i]
	if name == "" || !validMetricName(name) {
		return m, "", fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[i:]
	lset := map[string]string{labels.MetricName: name}
	if rest[0] == '{' {
		end, err := parseLabels(rest, lset)
		if err != nil {
			return m, "", err
		}
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return m, "", fmt.Errorf("bad value/timestamp in %q", line)
	}
	v, err := parseFloat(fields[0])
	if err != nil {
		return m, "", fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	m.Value = v
	if len(fields) == 2 {
		ts, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return m, "", fmt.Errorf("bad timestamp %q: %w", fields[1], err)
		}
		m.TS = ts
	}
	m.Labels = labels.FromMap(lset)
	return m, name, nil
}

// parseLabels parses a {a="b",c="d"} block starting at s[0]=='{', filling
// into. It returns the index one past the closing '}'.
func parseLabels(s string, into map[string]string) (int, error) {
	i := 1 // past '{'
	for {
		// Skip whitespace and a single optional comma.
		for i < len(s) && (s[i] == ' ' || s[i] == '\t' || s[i] == ',') {
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block in %q", s)
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(s) && s[i] != '=' && s[i] != '}' {
			i++
		}
		if i >= len(s) || s[i] != '=' {
			return 0, fmt.Errorf("missing '=' in label block %q", s)
		}
		name := strings.TrimSpace(s[start:i])
		if !validLabelName(name) {
			return 0, fmt.Errorf("invalid label name %q", name)
		}
		i++ // past '='
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label value must be quoted in %q", s)
		}
		i++
		var b strings.Builder
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					b.WriteByte('\n')
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				default:
					b.WriteByte('\\')
					b.WriteByte(s[i])
				}
			} else {
				b.WriteByte(s[i])
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value in %q", s)
		}
		i++ // past closing quote
		into[name] = b.String()
	}
}

func parseFloat(s string) (float64, error) {
	switch s {
	case "NaN":
		return math.NaN(), nil
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func unescapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}

func validMetricName(s string) bool {
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

func validLabelName(s string) bool {
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}
