package expofmt

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/labels"
)

func writeOne(t *testing.T, f *Family) string {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFamily(f); err != nil {
		t.Fatalf("WriteFamily: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.String()
}

func TestWriteBasic(t *testing.T) {
	f := &Family{
		Name: "node_cpu_seconds_total",
		Help: "Total CPU time.",
		Type: TypeCounter,
		Metrics: []Metric{
			{Labels: labels.FromStrings("cpu", "0", "mode", "user"), Value: 12.5},
		},
	}
	out := writeOne(t, f)
	want := "# HELP node_cpu_seconds_total Total CPU time.\n" +
		"# TYPE node_cpu_seconds_total counter\n" +
		`node_cpu_seconds_total{cpu="0",mode="user"} 12.5` + "\n"
	if out != want {
		t.Errorf("got:\n%s\nwant:\n%s", out, want)
	}
}

func TestWriteNoLabelsAndTimestamp(t *testing.T) {
	f := &Family{Name: "up", Type: TypeGauge, Metrics: []Metric{{Value: 1, TS: 1700000000000}}}
	out := writeOne(t, f)
	if !strings.Contains(out, "up 1 1700000000000\n") {
		t.Errorf("missing timestamped sample: %s", out)
	}
}

func TestWriteSpecialValues(t *testing.T) {
	f := &Family{Name: "m", Metrics: []Metric{
		{Value: math.NaN()}, {Value: math.Inf(1)}, {Value: math.Inf(-1)},
	}}
	out := writeOne(t, f)
	for _, want := range []string{"m NaN", "m +Inf", "m -Inf"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %s", want, out)
		}
	}
}

func TestParseBasic(t *testing.T) {
	in := `# HELP http_requests_total Requests.
# TYPE http_requests_total counter
http_requests_total{method="get",code="200"} 1027 1395066363000
http_requests_total{method="post",code="400"} 3
# TYPE temp gauge
temp 36.6
`
	fams, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(fams) != 2 {
		t.Fatalf("want 2 families, got %d", len(fams))
	}
	f := fams[0]
	if f.Name != "http_requests_total" || f.Type != TypeCounter || f.Help != "Requests." {
		t.Errorf("family meta wrong: %+v", f)
	}
	if len(f.Metrics) != 2 {
		t.Fatalf("want 2 metrics, got %d", len(f.Metrics))
	}
	m := f.Metrics[0]
	if m.Value != 1027 || m.TS != 1395066363000 {
		t.Errorf("metric 0 = %+v", m)
	}
	if m.Labels.Get("method") != "get" || m.Labels.Name() != "http_requests_total" {
		t.Errorf("labels wrong: %v", m.Labels)
	}
	if fams[1].Metrics[0].Value != 36.6 {
		t.Errorf("gauge value wrong")
	}
}

func TestParseEscapes(t *testing.T) {
	in := `m{path="C:\\dir",msg="line\nbreak",q="say \"hi\""} 1` + "\n"
	fams, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ls := fams[0].Metrics[0].Labels
	if ls.Get("path") != `C:\dir` {
		t.Errorf("path = %q", ls.Get("path"))
	}
	if ls.Get("msg") != "line\nbreak" {
		t.Errorf("msg = %q", ls.Get("msg"))
	}
	if ls.Get("q") != `say "hi"` {
		t.Errorf("q = %q", ls.Get("q"))
	}
}

func TestParseSpecialFloats(t *testing.T) {
	in := "a NaN\nb +Inf\nc -Inf\nd 1e9\n"
	fams, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !math.IsNaN(fams[0].Metrics[0].Value) {
		t.Error("NaN not parsed")
	}
	if !math.IsInf(fams[1].Metrics[0].Value, 1) || !math.IsInf(fams[2].Metrics[0].Value, -1) {
		t.Error("Inf not parsed")
	}
	if fams[3].Metrics[0].Value != 1e9 {
		t.Error("scientific notation not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"metric{a=\"b\" 1\n",      // unterminated label block
		"metric{a=b} 1\n",         // unquoted value
		"metric 1 2 3\n",          // too many fields
		"metric{=\"v\"} 1\n",      // empty label name
		"m{a=\"v\"} notanum\n",    // bad value
		"1metric 5\n",             // bad metric name
		"m{a=\"v\"} 1 notatime\n", // bad timestamp
	}
	for _, in := range bad {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

func TestParseSkipsBlanksAndComments(t *testing.T) {
	in := "\n# just a comment\n\nm 1\n"
	fams, err := Parse(strings.NewReader(in))
	if err != nil || len(fams) != 1 {
		t.Fatalf("fams=%d err=%v", len(fams), err)
	}
}

func TestParseLabelBlockWithSpaces(t *testing.T) {
	in := `m{ a="1" , b="2" } 3` + "\n"
	fams, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ls := fams[0].Metrics[0].Labels
	if ls.Get("a") != "1" || ls.Get("b") != "2" {
		t.Errorf("labels = %v", ls)
	}
}

// Property: write→parse round-trips value and labels for well-formed input.
func TestRoundTripProperty(t *testing.T) {
	f := func(v float64, lv string, ts int64) bool {
		if ts < 0 {
			ts = -ts
		}
		fam := &Family{
			Name: "round_trip_metric",
			Type: TypeGauge,
			Metrics: []Metric{{
				Labels: labels.FromStrings("l", lv),
				Value:  v,
				TS:     ts,
			}},
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteFamily(fam); err != nil {
			return false
		}
		w.Flush()
		got, err := Parse(&buf)
		if err != nil || len(got) != 1 || len(got[0].Metrics) != 1 {
			return false
		}
		m := got[0].Metrics[0]
		if m.Labels.Get("l") != lv {
			return false
		}
		if m.TS != ts {
			return false
		}
		if math.IsNaN(v) {
			return math.IsNaN(m.Value)
		}
		return m.Value == v
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestValidNames(t *testing.T) {
	if !validMetricName("node_rapl:energy_joules_total") {
		t.Error("colon should be valid in metric name")
	}
	if validLabelName("with:colon") {
		t.Error("colon invalid in label name")
	}
	if validMetricName("") || validLabelName("") {
		t.Error("empty names invalid")
	}
}
