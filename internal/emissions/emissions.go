// Package emissions implements the emission-factor providers CEEMS uses to
// convert energy into CO2-equivalent emissions (paper §II.A.c): static
// country-level factors from OWID, real-time factors from RTE's éCO2mix
// (France) and from the Electricity Maps API. The real services are
// replaced by mock HTTP servers that produce realistic diurnal signals; the
// clients poll and cache exactly as they would against the real endpoints.
package emissions

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"
)

// Factor is one emission factor sample.
type Factor struct {
	// GramsPerKWh is the emission factor in gCO2e per kWh.
	GramsPerKWh float64
	// Source names the provider that produced the factor.
	Source string
	// At is when the factor was valid.
	At time.Time
}

// Grams converts an energy amount in joules to grams CO2e under the factor.
func (f Factor) Grams(joules float64) float64 {
	return joules / 3.6e6 * f.GramsPerKWh
}

// Provider supplies emission factors for a zone (ISO country code).
type Provider interface {
	// Name identifies the provider ("owid", "rte", "emaps").
	Name() string
	// Factor returns the current factor for the zone.
	Factor(ctx context.Context, zone string) (Factor, error)
}

// owidFactors holds static country-average emission factors (gCO2e/kWh),
// from OWID's electricity carbon-intensity data (2023 values).
var owidFactors = map[string]float64{
	"FR": 56, "SE": 41, "NO": 30, "CH": 34,
	"DE": 381, "PL": 662, "US": 369, "GB": 238,
	"CN": 582, "IN": 713, "JP": 485, "AU": 549,
	"CA": 128, "ES": 174, "IT": 331, "NL": 268,
	"WORLD": 481,
}

// OWID is the static-factor provider.
type OWID struct{}

// Name implements Provider.
func (OWID) Name() string { return "owid" }

// Factor returns the static country factor, falling back to the world
// average for unknown zones.
func (OWID) Factor(_ context.Context, zone string) (Factor, error) {
	v, ok := owidFactors[zone]
	if !ok {
		v = owidFactors["WORLD"]
	}
	return Factor{GramsPerKWh: v, Source: "owid", At: time.Time{}}, nil
}

// Zones lists the zones with dedicated static factors.
func (OWID) Zones() []string {
	out := make([]string, 0, len(owidFactors))
	for z := range owidFactors {
		out = append(out, z)
	}
	return out
}

// RTE is the client for the (mock) RTE éCO2mix real-time factor for France.
type RTE struct {
	// URL of the eco2mix endpoint.
	URL    string
	Client *http.Client
}

// Name implements Provider.
func (*RTE) Name() string { return "rte" }

// rteResponse mirrors the éCO2mix JSON payload shape.
type rteResponse struct {
	TauxCO2 float64 `json:"taux_co2"` // gCO2e/kWh
	Date    string  `json:"date"`
}

// Factor fetches the current French factor; RTE serves France only.
func (r *RTE) Factor(ctx context.Context, zone string) (Factor, error) {
	if zone != "FR" {
		return Factor{}, fmt.Errorf("emissions: rte only serves zone FR, not %q", zone)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.URL, nil)
	if err != nil {
		return Factor{}, err
	}
	client := r.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return Factor{}, fmt.Errorf("emissions: rte: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Factor{}, fmt.Errorf("emissions: rte returned %s", resp.Status)
	}
	var body rteResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return Factor{}, fmt.Errorf("emissions: rte decode: %w", err)
	}
	at, _ := time.Parse(time.RFC3339, body.Date)
	return Factor{GramsPerKWh: body.TauxCO2, Source: "rte", At: at}, nil
}

// EMaps is the client for the (mock) Electricity Maps API, which requires
// an auth token, as the real free tier does.
type EMaps struct {
	BaseURL string
	Token   string
	Client  *http.Client
}

// Name implements Provider.
func (*EMaps) Name() string { return "emaps" }

type emapsResponse struct {
	Zone            string  `json:"zone"`
	CarbonIntensity float64 `json:"carbonIntensity"`
	Datetime        string  `json:"datetime"`
}

// Factor fetches the zone's current carbon intensity.
func (e *EMaps) Factor(ctx context.Context, zone string) (Factor, error) {
	url := fmt.Sprintf("%s/v3/carbon-intensity/latest?zone=%s", e.BaseURL, zone)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return Factor{}, err
	}
	req.Header.Set("auth-token", e.Token)
	client := e.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return Factor{}, fmt.Errorf("emissions: emaps: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Factor{}, fmt.Errorf("emissions: emaps returned %s", resp.Status)
	}
	var body emapsResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return Factor{}, fmt.Errorf("emissions: emaps decode: %w", err)
	}
	at, _ := time.Parse(time.RFC3339, body.Datetime)
	return Factor{GramsPerKWh: body.CarbonIntensity, Source: "emaps", At: at}, nil
}

// Cached wraps a provider with a TTL cache, the polling discipline CEEMS
// applies so dashboards do not hammer the factor APIs.
type Cached struct {
	Provider Provider
	TTL      time.Duration
	// Now overrides the clock (for simulations); nil means time.Now.
	Now func() time.Time

	mu    sync.Mutex
	cache map[string]cachedEntry
}

type cachedEntry struct {
	f   Factor
	exp time.Time
}

// Name implements Provider.
func (c *Cached) Name() string { return c.Provider.Name() }

// Factor serves from cache within the TTL, otherwise refreshes.
func (c *Cached) Factor(ctx context.Context, zone string) (Factor, error) {
	now := time.Now()
	if c.Now != nil {
		now = c.Now()
	}
	c.mu.Lock()
	if e, ok := c.cache[zone]; ok && now.Before(e.exp) {
		c.mu.Unlock()
		return e.f, nil
	}
	c.mu.Unlock()
	f, err := c.Provider.Factor(ctx, zone)
	if err != nil {
		return Factor{}, err
	}
	c.mu.Lock()
	if c.cache == nil {
		c.cache = map[string]cachedEntry{}
	}
	ttl := c.TTL
	if ttl <= 0 {
		ttl = 5 * time.Minute
	}
	c.cache[zone] = cachedEntry{f: f, exp: now.Add(ttl)}
	c.mu.Unlock()
	return f, nil
}

// Chain tries providers in order, returning the first success — CEEMS's
// "real-time when available, static otherwise" policy.
type Chain struct {
	Providers []Provider
}

// Name implements Provider.
func (c *Chain) Name() string { return "chain" }

// Factor returns the first provider's successful answer.
func (c *Chain) Factor(ctx context.Context, zone string) (Factor, error) {
	var lastErr error
	for _, p := range c.Providers {
		f, err := p.Factor(ctx, zone)
		if err == nil {
			return f, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("emissions: empty provider chain")
	}
	return Factor{}, lastErr
}

// DiurnalFactor models a realistic real-time factor signal: a base value
// modulated by a daily cycle (solar displaces carbon mid-day) plus slow
// noise. Both mock servers use it.
func DiurnalFactor(base float64, at time.Time) float64 {
	hour := float64(at.Hour()) + float64(at.Minute())/60
	// Trough at 13:00 (max solar), peak near 19:00 (evening ramp).
	solar := -0.25 * math.Cos((hour-13)/24*2*math.Pi)
	evening := 0.15 * math.Exp(-((hour-19)*(hour-19))/8)
	wobble := 0.05 * math.Sin(float64(at.Unix()/600))
	return base * (1 + solar + evening + wobble)
}

// MockRTEHandler serves the éCO2mix payload shape with a diurnal factor
// around the French nuclear-heavy base. Pass a clock for simulated time.
func MockRTEHandler(now func() time.Time) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		t := now()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rteResponse{
			TauxCO2: DiurnalFactor(56, t),
			Date:    t.Format(time.RFC3339),
		})
	})
}

// MockEMapsHandler serves Electricity-Maps-shaped responses for any known
// zone, enforcing token auth like the real API.
func MockEMapsHandler(token string, now func() time.Time) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("auth-token") != token {
			http.Error(w, `{"error":"invalid token"}`, http.StatusUnauthorized)
			return
		}
		zone := r.URL.Query().Get("zone")
		base, ok := owidFactors[zone]
		if !ok {
			http.Error(w, `{"error":"unknown zone"}`, http.StatusNotFound)
			return
		}
		t := now()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(emapsResponse{
			Zone:            zone,
			CarbonIntensity: DiurnalFactor(base, t),
			Datetime:        t.Format(time.RFC3339),
		})
	})
}
