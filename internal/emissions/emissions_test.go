package emissions

import (
	"context"
	"errors"
	"math"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

var ctx = context.Background()

func TestFactorGrams(t *testing.T) {
	f := Factor{GramsPerKWh: 56}
	// 1 kWh = 3.6e6 J → 56 g.
	if got := f.Grams(3.6e6); math.Abs(got-56) > 1e-9 {
		t.Errorf("Grams(1 kWh) = %v", got)
	}
	if got := f.Grams(0); got != 0 {
		t.Errorf("Grams(0) = %v", got)
	}
}

func TestOWID(t *testing.T) {
	p := OWID{}
	f, err := p.Factor(ctx, "FR")
	if err != nil || f.GramsPerKWh != 56 {
		t.Errorf("FR = %+v, %v", f, err)
	}
	f, _ = p.Factor(ctx, "PL")
	if f.GramsPerKWh != 662 {
		t.Errorf("PL = %+v", f)
	}
	// Unknown zone falls back to world average.
	f, _ = p.Factor(ctx, "XX")
	if f.GramsPerKWh != 481 {
		t.Errorf("fallback = %+v", f)
	}
	if len(p.Zones()) < 10 {
		t.Error("too few zones")
	}
}

func TestRTEMock(t *testing.T) {
	now := time.Date(2026, 6, 1, 13, 0, 0, 0, time.UTC)
	srv := httptest.NewServer(MockRTEHandler(func() time.Time { return now }))
	defer srv.Close()
	p := &RTE{URL: srv.URL}
	f, err := p.Factor(ctx, "FR")
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	if f.Source != "rte" || f.GramsPerKWh <= 0 {
		t.Errorf("factor = %+v", f)
	}
	// Midday factor should be below the base (solar displacement).
	if f.GramsPerKWh >= 56 {
		t.Errorf("midday factor %v should be below base 56", f.GramsPerKWh)
	}
	// Evening factor above midday.
	now = time.Date(2026, 6, 1, 19, 0, 0, 0, time.UTC)
	f2, _ := p.Factor(ctx, "FR")
	if f2.GramsPerKWh <= f.GramsPerKWh {
		t.Errorf("evening %v should exceed midday %v", f2.GramsPerKWh, f.GramsPerKWh)
	}
	// Non-FR zone rejected.
	if _, err := p.Factor(ctx, "DE"); err == nil {
		t.Error("rte should reject non-FR zones")
	}
}

func TestEMapsMock(t *testing.T) {
	now := func() time.Time { return time.Date(2026, 6, 1, 12, 0, 0, 0, time.UTC) }
	srv := httptest.NewServer(MockEMapsHandler("tok123", now))
	defer srv.Close()

	p := &EMaps{BaseURL: srv.URL, Token: "tok123"}
	f, err := p.Factor(ctx, "DE")
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	if f.Source != "emaps" || f.GramsPerKWh <= 0 {
		t.Errorf("factor = %+v", f)
	}
	// Bad token.
	bad := &EMaps{BaseURL: srv.URL, Token: "wrong"}
	if _, err := bad.Factor(ctx, "DE"); err == nil {
		t.Error("bad token accepted")
	}
	// Unknown zone.
	if _, err := p.Factor(ctx, "ZZ"); err == nil {
		t.Error("unknown zone accepted")
	}
}

type countingProvider struct {
	calls atomic.Int64
	fail  bool
}

func (c *countingProvider) Name() string { return "counting" }
func (c *countingProvider) Factor(context.Context, string) (Factor, error) {
	c.calls.Add(1)
	if c.fail {
		return Factor{}, errors.New("boom")
	}
	return Factor{GramsPerKWh: 100, Source: "counting"}, nil
}

func TestCachedTTL(t *testing.T) {
	inner := &countingProvider{}
	clock := time.Unix(0, 0)
	c := &Cached{Provider: inner, TTL: time.Minute, Now: func() time.Time { return clock }}
	for i := 0; i < 5; i++ {
		if _, err := c.Factor(ctx, "FR"); err != nil {
			t.Fatal(err)
		}
	}
	if inner.calls.Load() != 1 {
		t.Errorf("calls = %d, want 1 (cached)", inner.calls.Load())
	}
	clock = clock.Add(2 * time.Minute)
	c.Factor(ctx, "FR")
	if inner.calls.Load() != 2 {
		t.Errorf("calls after expiry = %d, want 2", inner.calls.Load())
	}
	// Different zone is a separate entry.
	c.Factor(ctx, "DE")
	if inner.calls.Load() != 3 {
		t.Errorf("calls for new zone = %d", inner.calls.Load())
	}
}

func TestChainFallback(t *testing.T) {
	failing := &countingProvider{fail: true}
	ok := &countingProvider{}
	chain := &Chain{Providers: []Provider{failing, ok}}
	f, err := chain.Factor(ctx, "FR")
	if err != nil || f.Source != "counting" {
		t.Errorf("chain = %+v, %v", f, err)
	}
	if failing.calls.Load() != 1 || ok.calls.Load() != 1 {
		t.Error("chain call pattern wrong")
	}
	// All failing.
	chain2 := &Chain{Providers: []Provider{failing}}
	if _, err := chain2.Factor(ctx, "FR"); err == nil {
		t.Error("all-failing chain succeeded")
	}
	// Empty chain.
	if _, err := (&Chain{}).Factor(ctx, "FR"); err == nil {
		t.Error("empty chain succeeded")
	}
}

func TestDiurnalShape(t *testing.T) {
	base := 100.0
	day := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	var mn, mx = math.Inf(1), math.Inf(-1)
	for h := 0; h < 24; h++ {
		v := DiurnalFactor(base, day.Add(time.Duration(h)*time.Hour))
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		if v <= 0 {
			t.Errorf("factor at %dh = %v", h, v)
		}
	}
	// Meaningful daily swing, but bounded.
	if (mx-mn)/base < 0.2 || (mx-mn)/base > 0.8 {
		t.Errorf("daily swing = %v..%v", mn, mx)
	}
}

// The paper's motivating comparison: the same 1 MWh workload produces very
// different reported emissions under French vs Polish grids, and real-time
// vs static factors differ within a day.
func TestStaticVsRealTimeDivergence(t *testing.T) {
	joules := 3.6e9 // 1 MWh
	owid := OWID{}
	fFR, _ := owid.Factor(ctx, "FR")
	fPL, _ := owid.Factor(ctx, "PL")
	if fPL.Grams(joules)/fFR.Grams(joules) < 5 {
		t.Error("PL/FR emission ratio should be large")
	}
	// Real-time: midday vs evening France.
	mid := Factor{GramsPerKWh: DiurnalFactor(56, time.Date(2026, 6, 1, 13, 0, 0, 0, time.UTC))}
	eve := Factor{GramsPerKWh: DiurnalFactor(56, time.Date(2026, 6, 1, 19, 0, 0, 0, time.UTC))}
	if eve.Grams(joules) <= mid.Grams(joules) {
		t.Error("evening emissions should exceed midday")
	}
}
