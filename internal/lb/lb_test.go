package lb

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"
)

// stubChecker owns units by prefix: user "alice" owns uuids starting "a".
type stubChecker struct {
	admins map[string]bool
	calls  int
	mu     sync.Mutex
}

func (s *stubChecker) Owns(_ context.Context, user, uuid string) (bool, error) {
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
	return len(uuid) > 0 && len(user) > 0 && uuid[0] == user[0], nil
}

func (s *stubChecker) IsAdmin(_ context.Context, user string) bool { return s.admins[user] }

func newTestLB(t *testing.T, strategy Strategy, nBackends int) (*LB, []*httptest.Server, *[]int) {
	t.Helper()
	var servers []*httptest.Server
	counts := make([]int, nBackends)
	var mu sync.Mutex
	lb := &LB{Strategy: strategy, Checker: &stubChecker{admins: map[string]bool{"root": true}}}
	for i := 0; i < nBackends; i++ {
		i := i
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			counts[i]++
			mu.Unlock()
			w.Write([]byte(`{"status":"success"}`))
		}))
		servers = append(servers, srv)
		b, err := NewBackend(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		lb.Backends = append(lb.Backends, b)
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Close()
		}
	})
	return lb, servers, &counts
}

func get(t *testing.T, lb *LB, path, user string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if user != "" {
		req.Header.Set("X-Grafana-User", user)
	}
	rec := httptest.NewRecorder()
	lb.ServeHTTP(rec, req)
	return rec
}

func TestExtractUUIDs(t *testing.T) {
	cases := []struct {
		q    string
		want []string
	}{
		{`ceems_compute_unit_cpu_usage_seconds_total{uuid="123"}`, []string{"123"}},
		{`rate(metric{uuid="1"}[5m]) + metric2{uuid="2"}`, []string{"1", "2"}},
		{`sum by (uuid) (metric{uuid=~"1|2|3"})`, []string{"1", "2", "3"}},
		{`up`, nil},
		{`topk(3, m{uuid="9"})`, []string{"9"}},
	}
	for _, c := range cases {
		got, err := ExtractUUIDs(c.q)
		if err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		if !reflect.DeepEqual(got, c.want) && !(len(got) == 0 && len(c.want) == 0) {
			t.Errorf("ExtractUUIDs(%s) = %v, want %v", c.q, got, c.want)
		}
	}
	// Unenumerable / negative matchers fail closed.
	for _, q := range []string{
		`m{uuid=~"1.*"}`,
		`m{uuid!~"x"}`,
		`m{uuid!="1"}`,
	} {
		if _, err := ExtractUUIDs(q); err == nil {
			t.Errorf("expected error for %q", q)
		}
	}
	if _, err := ExtractUUIDs(`not a query{{`); err == nil {
		t.Error("unparseable query accepted")
	}
}

func TestAccessControl(t *testing.T) {
	lb, _, _ := newTestLB(t, RoundRobin, 1)

	// Owner allowed.
	rec := get(t, lb, `/api/v1/query?query=m{uuid="a1"}`, "alice")
	if rec.Code != 200 {
		t.Errorf("owner query = %d: %s", rec.Code, rec.Body)
	}
	// Cross-user denied.
	rec = get(t, lb, `/api/v1/query?query=m{uuid="b7"}`, "alice")
	if rec.Code != 403 {
		t.Errorf("cross-user = %d", rec.Code)
	}
	if lb.Denied() != 1 {
		t.Errorf("denied = %d", lb.Denied())
	}
	// Admin bypass.
	rec = get(t, lb, `/api/v1/query?query=m{uuid="b7"}`, "root")
	if rec.Code != 200 {
		t.Errorf("admin = %d", rec.Code)
	}
	// Missing identity.
	rec = get(t, lb, `/api/v1/query?query=up`, "")
	if rec.Code != 401 {
		t.Errorf("anonymous = %d", rec.Code)
	}
	// Query without uuid matchers passes (node-level dashboards).
	rec = get(t, lb, `/api/v1/query?query=up`, "alice")
	if rec.Code != 200 {
		t.Errorf("uuid-less query = %d", rec.Code)
	}
	// Multi-uuid query with one foreign uuid denied.
	rec = get(t, lb, `/api/v1/query?query=m{uuid=~"a1|b2"}`, "alice")
	if rec.Code != 403 {
		t.Errorf("mixed uuids = %d", rec.Code)
	}
	// Unenumerable regexp rejected as bad request.
	rec = get(t, lb, `/api/v1/query?query=m{uuid=~"a.*"}`, "alice")
	if rec.Code != 400 {
		t.Errorf("wildcard uuid = %d", rec.Code)
	}
}

func TestRoundRobinDistribution(t *testing.T) {
	lb, _, counts := newTestLB(t, RoundRobin, 3)
	for i := 0; i < 30; i++ {
		if rec := get(t, lb, "/api/v1/query?query=up", "alice"); rec.Code != 200 {
			t.Fatalf("status = %d", rec.Code)
		}
	}
	for i, c := range *counts {
		if c != 10 {
			t.Errorf("backend %d served %d, want 10", i, c)
		}
	}
	// Served counters agree.
	for _, b := range lb.Backends {
		if b.Served() != 10 {
			t.Errorf("Served = %d", b.Served())
		}
	}
}

func TestUnhealthySkipped(t *testing.T) {
	lb, _, counts := newTestLB(t, RoundRobin, 2)
	lb.Backends[0].SetHealthy(false)
	for i := 0; i < 6; i++ {
		get(t, lb, "/api/v1/query?query=up", "alice")
	}
	if (*counts)[0] != 0 || (*counts)[1] != 6 {
		t.Errorf("counts = %v", *counts)
	}
	// All unhealthy → 502.
	lb.Backends[1].SetHealthy(false)
	rec := get(t, lb, "/api/v1/query?query=up", "alice")
	if rec.Code != 502 {
		t.Errorf("no-backend status = %d", rec.Code)
	}
}

func TestLeastConnection(t *testing.T) {
	// Backend 0 is slow; least-connection should route new requests to
	// backend 1 while 0 is busy.
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		<-release
		w.Write([]byte("slow"))
	}))
	defer slow.Close()
	var fastCount int
	var mu sync.Mutex
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		mu.Lock()
		fastCount++
		mu.Unlock()
		w.Write([]byte("fast"))
	}))
	defer fast.Close()

	b0, _ := NewBackend(slow.URL)
	b1, _ := NewBackend(fast.URL)
	lb := &LB{Backends: []*Backend{b0, b1}, Strategy: LeastConnection}

	// Occupy the slow backend.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		get(t, lb, "/api/v1/query?query=up", "alice")
	}()
	// Wait until the slow request is in flight.
	deadline := time.Now().Add(2 * time.Second)
	for b0.Active() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if b0.Active() != 1 {
		t.Fatal("slow request never started")
	}
	for i := 0; i < 5; i++ {
		get(t, lb, "/api/v1/query?query=up", "alice")
	}
	close(release)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if fastCount != 5 {
		t.Errorf("fast backend served %d, want 5", fastCount)
	}
}

func TestHealthCheck(t *testing.T) {
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/-/healthy" {
			w.WriteHeader(200)
			return
		}
		w.WriteHeader(404)
	}))
	defer healthy.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(500)
	}))
	b0, _ := NewBackend(healthy.URL)
	b1, _ := NewBackend(dead.URL)
	dead.Close() // connection refused
	lb := &LB{Backends: []*Backend{b0, b1}}
	lb.HealthCheck(context.Background())
	if !b0.Healthy() {
		t.Error("healthy backend marked down")
	}
	if b1.Healthy() {
		t.Error("dead backend marked up")
	}
}

func TestHTTPChecker(t *testing.T) {
	api := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		uuid := r.URL.Query().Get("uuid")
		if uuid == "mine" {
			w.WriteHeader(200)
		} else {
			w.WriteHeader(403)
		}
	}))
	defer api.Close()
	c := &HTTPChecker{BaseURL: api.URL}
	owns, err := c.Owns(context.Background(), "u", "mine")
	if err != nil || !owns {
		t.Errorf("Owns(mine) = %v, %v", owns, err)
	}
	owns, err = c.Owns(context.Background(), "u", "other")
	if err != nil || owns {
		t.Errorf("Owns(other) = %v, %v", owns, err)
	}
	if c.IsAdmin(context.Background(), "root") {
		t.Error("HTTP checker should not grant admin locally")
	}
}

func TestProxyFailover(t *testing.T) {
	// Backend 0 is dead (connection refused) but still marked healthy —
	// the health checker hasn't noticed yet. With a retry budget the GET
	// must fail over to backend 1 transparently.
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"status":"success"}`))
	}))
	defer live.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {}))
	b0, _ := NewBackend(dead.URL)
	b1, _ := NewBackend(live.URL)
	dead.Close()

	lb := &LB{Backends: []*Backend{b0, b1}, Checker: &stubChecker{}, ProxyRetries: 1}
	// pick() round-robins; loop until the dead backend is attempted first.
	var sawFailover bool
	for i := 0; i < 4; i++ {
		rec := get(t, lb, "/api/v1/query?query=up", "alice")
		if rec.Code != 200 {
			t.Fatalf("request %d = %d: %s", i, rec.Code, rec.Body)
		}
		if lb.Failovers() > 0 {
			sawFailover = true
		}
	}
	if !sawFailover {
		t.Error("no failover recorded despite dead backend in rotation")
	}
	if b0.Healthy() {
		t.Error("dead backend still marked healthy after transport error")
	}

	// Unsafe methods never retry: the body was consumed by the attempt.
	b0.SetHealthy(true)
	lb2 := &LB{Backends: []*Backend{b0}, Checker: &stubChecker{}, ProxyRetries: 3}
	req := httptest.NewRequest(http.MethodPost, "/api/v1/query", nil)
	req.Header.Set("X-Grafana-User", "alice")
	rec := httptest.NewRecorder()
	lb2.ServeHTTP(rec, req)
	if rec.Code != 502 {
		t.Errorf("POST to dead backend = %d, want 502", rec.Code)
	}
	if lb2.Failovers() != 0 {
		t.Errorf("POST failed over %d times, want 0", lb2.Failovers())
	}

	// Budget exhausted (every backend dead) still ends in one 502.
	b0.SetHealthy(true)
	lb3 := &LB{Backends: []*Backend{b0}, Checker: &stubChecker{}, ProxyRetries: 2}
	if rec := get(t, lb3, "/api/v1/query?query=up", "alice"); rec.Code != 502 {
		t.Errorf("all-dead status = %d, want 502", rec.Code)
	}
}

func TestBadBackendURL(t *testing.T) {
	if _, err := NewBackend("://bad"); err == nil {
		t.Error("bad URL accepted")
	}
}

func BenchmarkLBAuthorizedProxy(b *testing.B) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer srv.Close()
	be, _ := NewBackend(srv.URL)
	lb := &LB{Backends: []*Backend{be}, Checker: &stubChecker{}}
	req := httptest.NewRequest(http.MethodGet, `/api/v1/query?query=m{uuid="a1"}`, nil)
	req.Header.Set("X-Grafana-User", "alice")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		lb.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status %d", rec.Code)
		}
	}
}
