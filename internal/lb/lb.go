// Package lb implements the CEEMS load balancer (paper §II.B.c): a reverse
// proxy in front of one or more Prometheus/Thanos backends that adds the
// access control Grafana lacks. Every query is introspected — the compute
// unit identifiers are extracted from the PromQL expression itself — and
// the requesting user (from the X-Grafana-User header Grafana attaches) is
// checked for ownership against the CEEMS API server, either through its
// DB directly or over its verification endpoint. As a load balancer it
// supports the classic round-robin and least-connection strategies.
package lb

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/labels"
	"repro/internal/promql"
	"repro/internal/querycache"
	"repro/internal/telemetry"
)

// OwnershipChecker answers whether a user may see a compute unit's
// metrics.
type OwnershipChecker interface {
	// Owns reports whether user owns the unit with the given (bare or
	// fully-qualified) identifier.
	Owns(ctx context.Context, user, uuid string) (bool, error)
	// IsAdmin reports whether the user bypasses ownership checks.
	IsAdmin(ctx context.Context, user string) bool
}

// APIServerChecker adapts the in-process API server as the checker — the
// "directly querying the CEEMS API server's DB" path of the paper.
type APIServerChecker struct {
	Server interface {
		OwnsUnit(user, uuid string) (bool, error)
		IsAdmin(user string) bool
	}
}

// Owns implements OwnershipChecker.
func (c *APIServerChecker) Owns(_ context.Context, user, uuid string) (bool, error) {
	return c.Server.OwnsUnit(user, uuid)
}

// IsAdmin implements OwnershipChecker.
func (c *APIServerChecker) IsAdmin(_ context.Context, user string) bool {
	return c.Server.IsAdmin(user)
}

// HTTPChecker queries the API server's verify endpoint — the fallback
// "when the DB file is not accessible".
type HTTPChecker struct {
	BaseURL string
	Client  *http.Client
}

// Owns implements OwnershipChecker via GET /api/v1/units/verify.
func (c *HTTPChecker) Owns(ctx context.Context, user, uuid string) (bool, error) {
	u := fmt.Sprintf("%s/api/v1/units/verify?user=%s&uuid=%s",
		c.BaseURL, url.QueryEscape(user), url.QueryEscape(uuid))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("X-Grafana-User", user)
	client := c.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusForbidden:
		return false, nil
	}
	return false, fmt.Errorf("lb: verify endpoint returned %s", resp.Status)
}

// IsAdmin implements OwnershipChecker; admin resolution happens inside the
// verify endpoint, so the HTTP checker never grants a local bypass.
func (c *HTTPChecker) IsAdmin(context.Context, string) bool { return false }

// Strategy selects how backends are balanced.
type Strategy string

const (
	RoundRobin      Strategy = "round-robin"
	LeastConnection Strategy = "least-connection"
)

// Backend is one Prometheus/Thanos instance behind the LB.
type Backend struct {
	URL *url.URL

	healthy atomic.Bool
	active  atomic.Int64 // in-flight requests
	served  atomic.Int64 // total requests proxied
}

// NewBackend parses the base URL and returns a healthy backend.
func NewBackend(raw string) (*Backend, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("lb: bad backend url %q: %w", raw, err)
	}
	b := &Backend{URL: u}
	b.healthy.Store(true)
	return b, nil
}

// Healthy reports the backend's health flag.
func (b *Backend) Healthy() bool { return b.healthy.Load() }

// SetHealthy updates the health flag (driven by health checks).
func (b *Backend) SetHealthy(v bool) { b.healthy.Store(v) }

// Served returns how many requests this backend has handled.
func (b *Backend) Served() int64 { return b.served.Load() }

// Active returns the number of in-flight requests.
func (b *Backend) Active() int64 { return b.active.Load() }

// LB is the load balancer handler.
type LB struct {
	Backends []*Backend
	Strategy Strategy
	Checker  OwnershipChecker
	// Transport issues the proxied requests; defaults to
	// http.DefaultTransport.
	Transport http.RoundTripper
	// QueryTimeout bounds each proxied request end to end (ownership check
	// plus backend round-trip); 0 disables.
	QueryTimeout time.Duration
	// Cache, when set, stores successful GET responses of the query API
	// endpoints in the shared query-result cache (blob entries with TTL
	// expiry — the LB proxies opaque JSON, it does not evaluate PromQL).
	// Lookups run strictly after access control — both the query expression
	// and any match[] selectors (labels / label-values endpoints) pass the
	// ownership check first — and keys exclude the requesting user: any
	// user authorized for a query receives the same payload a backend would
	// return. The LB answers /api/v1/status/querycache itself with the
	// cache's counters; that surface is admin-only under the Checker.
	Cache *querycache.Cache
	// CacheTTL bounds how long a cached response whose window touches the
	// present may be served; 0 picks DefaultCacheTTL. It is the LB's
	// staleness bound: unlike promapi's head-watermark invalidation, a
	// proxy cannot observe backend append progress, so freshness decays on
	// a clock.
	CacheTTL time.Duration
	// CacheSettledTTL is the TTL for range responses whose window ended
	// more than a lookback ago — data that no longer changes; 0 picks
	// DefaultCacheSettledTTL.
	CacheSettledTTL time.Duration
	// CacheNow supplies the clock for settledness decisions; nil means
	// time.Now. The cluster simulator wires its simulated clock here.
	CacheNow func() time.Time
	// ProxyRetries is how many additional distinct backends a safe (GET or
	// HEAD) request may fail over to when a backend dies before sending any
	// response byte; 0 disables failover. In front of a replicated cluster
	// the right budget is quorum-derived: reads tolerate R−W node losses,
	// so R−W retries reach every backend that could still answer. Requests
	// with bodies never retry — the body was consumed by the first attempt.
	ProxyRetries int

	// Metrics, when set (see InstrumentTelemetry), serves the registry's
	// exposition at GET /metrics — before access control, like any
	// exporter's scrape endpoint.
	Metrics *telemetry.Registry

	rrNext atomic.Uint64
	denied atomic.Int64
	// failovers counts proxied requests that succeeded only on a retry
	// backend.
	failovers atomic.Int64
	// proxied counts requests forwarded to a backend (cache hits excluded);
	// proxyErrors counts the ones answered 502 after exhausting retries.
	proxied     atomic.Int64
	proxyErrors atomic.Int64
}

// InstrumentTelemetry registers the LB's counters on reg as gather-time
// bridges over the same atomics Denied()/Failovers() read — the JSON-ish
// accessors and /metrics can never disagree — and arranges for ServeHTTP to
// serve the registry at GET /metrics. Call once at wiring time, after
// Backends is populated.
func (lb *LB) InstrumentTelemetry(reg *telemetry.Registry) {
	reg.CounterFunc("telemetry_lb_denied_total",
		"Queries rejected by the ownership check.",
		func() float64 { return float64(lb.denied.Load()) })
	reg.CounterFunc("telemetry_lb_failovers_total",
		"Proxied requests that succeeded only on a retry backend.",
		func() float64 { return float64(lb.failovers.Load()) })
	reg.CounterFunc("telemetry_lb_proxied_total",
		"Requests forwarded to a backend (cache hits excluded).",
		func() float64 { return float64(lb.proxied.Load()) })
	reg.CounterFunc("telemetry_lb_proxy_errors_total",
		"Requests answered 502 after every eligible backend failed.",
		func() float64 { return float64(lb.proxyErrors.Load()) })
	reg.GaugeFunc("telemetry_lb_backends_healthy",
		"Backends currently passing health checks.",
		func() float64 {
			n := 0
			for _, b := range lb.Backends {
				if b.Healthy() {
					n++
				}
			}
			return float64(n)
		})
	for _, b := range lb.Backends {
		b := b
		addr := b.URL.String()
		reg.CounterFunc("telemetry_lb_backend_served_total",
			"Requests proxied to this backend.",
			func() float64 { return float64(b.Served()) }, "backend", addr)
		reg.GaugeFunc("telemetry_lb_backend_active",
			"In-flight requests on this backend.",
			func() float64 { return float64(b.Active()) }, "backend", addr)
	}
	lb.Metrics = reg
}

// Default cache TTLs: fresh windows ride the typical scrape cadence,
// settled windows stick around for dashboard pans over old data.
const (
	DefaultCacheTTL        = 15 * time.Second
	DefaultCacheSettledTTL = 10 * time.Minute
	// settledMargin is how far behind now a range window must end to be
	// considered settled — one Prometheus lookback, so late samples within
	// the lookback window cannot be frozen into a long-lived entry.
	settledMargin = 5 * time.Minute
)

// Denied returns how many queries were rejected by access control.
func (lb *LB) Denied() int64 { return lb.denied.Load() }

// pick selects a backend per the strategy; nil when none are healthy.
func (lb *LB) pick() *Backend {
	var candidates []*Backend
	for _, b := range lb.Backends {
		if b.Healthy() {
			candidates = append(candidates, b)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	switch lb.Strategy {
	case LeastConnection:
		best := candidates[0]
		for _, b := range candidates[1:] {
			if b.Active() < best.Active() {
				best = b
			}
		}
		return best
	default: // round-robin
		n := lb.rrNext.Add(1)
		return candidates[(n-1)%uint64(len(candidates))]
	}
}

// ExtractUUIDs parses the PromQL expression and collects every compute
// unit identifier it references via uuid label matchers. Equality matchers
// contribute their value; anchored alternation regexps ("123|456")
// contribute each alternative. Regexps that cannot be enumerated return an
// error — the LB fails closed.
func ExtractUUIDs(query string) ([]string, error) {
	// Grafana panels re-issue the same expressions on every refresh; the
	// shared parse cache makes this introspection a lookup, not a parse.
	expr, err := promql.ParseExprCached(query)
	if err != nil {
		return nil, fmt.Errorf("lb: unparseable query: %w", err)
	}
	set := map[string]struct{}{}
	var visitErr error
	walk(expr, func(vs *promql.VectorSelector) {
		for _, m := range vs.Matchers {
			if m.Name != "uuid" {
				continue
			}
			switch m.Type {
			case labels.MatchEqual:
				set[m.Value] = struct{}{}
			case labels.MatchRegexp:
				alts, ok := enumerateAlternation(m.Value)
				if !ok {
					visitErr = fmt.Errorf("lb: uuid regexp %q is not enumerable", m.Value)
					return
				}
				for _, a := range alts {
					set[a] = struct{}{}
				}
			default:
				visitErr = fmt.Errorf("lb: negative uuid matchers are not allowed")
			}
		}
	})
	if visitErr != nil {
		return nil, visitErr
	}
	out := make([]string, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sort.Strings(out)
	return out, nil
}

// walk visits every vector selector in the expression tree.
func walk(e promql.Expr, fn func(*promql.VectorSelector)) {
	switch t := e.(type) {
	case *promql.VectorSelector:
		fn(t)
	case *promql.MatrixSelector:
		fn(t.VS)
	case *promql.ParenExpr:
		walk(t.Expr, fn)
	case *promql.UnaryExpr:
		walk(t.Expr, fn)
	case *promql.AggregateExpr:
		walk(t.Expr, fn)
		if t.Param != nil {
			walk(t.Param, fn)
		}
	case *promql.BinaryExpr:
		walk(t.LHS, fn)
		walk(t.RHS, fn)
	case *promql.Call:
		for _, a := range t.Args {
			walk(a, fn)
		}
	}
}

// enumerateAlternation splits a plain alternation regexp ("a|b|c") into
// its literals; it refuses patterns with other regexp metacharacters.
func enumerateAlternation(pattern string) ([]string, bool) {
	if strings.ContainsAny(pattern, `.*+?()[]{}^$\`) {
		return nil, false
	}
	parts := strings.Split(pattern, "|")
	for _, p := range parts {
		if p == "" {
			return nil, false
		}
	}
	return parts, true
}

// ServeHTTP authorizes and proxies one query request, serving repeat
// queries from the response cache when one is configured.
func (lb *LB) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if lb.Metrics != nil && r.URL.Path == "/metrics" {
		// Self-telemetry scrape surface: exact path only, and — like any
		// exporter's /metrics — ahead of the user header requirement so a
		// plain scrape loop can reach it.
		lb.Metrics.ServeHTTP(w, r)
		return
	}
	if lb.Cache != nil && r.URL.Path == "/api/v1/status/querycache" {
		// Admin surface: counters leak which queries are warm; gate it like
		// the rest of the admin bypasses (the checker decides who is admin).
		user := r.Header.Get("X-Grafana-User")
		if user == "" {
			http.Error(w, "missing X-Grafana-User header", http.StatusUnauthorized)
			return
		}
		if lb.Checker != nil && !lb.Checker.IsAdmin(r.Context(), user) {
			http.Error(w, "querycache status is admin-only", http.StatusForbidden)
			return
		}
		lb.serveCacheStatus(w)
		return
	}
	if lb.QueryTimeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), lb.QueryTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	user := r.Header.Get("X-Grafana-User")
	if user == "" {
		http.Error(w, "missing X-Grafana-User header", http.StatusUnauthorized)
		return
	}
	params := r.URL.Query()
	if query := params.Get("query"); query != "" && !lb.authorize(w, r, user, query) {
		return
	}
	// The labels/label-values endpoints scope their answer with match[]
	// selectors instead of a query expression; those selectors carry the
	// same uuid matchers and must pass the same ownership check — without
	// it the response (which the cache would then share across users) is
	// never access-checked at all.
	for _, sel := range params["match[]"] {
		if !lb.authorize(w, r, user, sel) {
			return
		}
	}
	// Cache lookup strictly after access control: a denied request never
	// reaches here, and a cached payload is keyed only by what the backend
	// would compute, never by who asked.
	key, cacheable := lb.cacheKey(r)
	if cacheable {
		if body, ok := lb.Cache.GetBlob(key); ok {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Querycache", "hit")
			w.Write(body)
			return
		}
	}
	backend := lb.pick()
	if backend == nil {
		http.Error(w, "no healthy backends", http.StatusBadGateway)
		return
	}
	if !cacheable {
		lb.proxy(w, r, backend)
		return
	}
	w.Header().Set("X-Querycache", "miss")
	cw := &captureWriter{ResponseWriter: w, limit: maxCachedBody}
	complete := lb.proxy(cw, r, backend)
	// Cache only fully-streamed 200s: a backend dying mid-body leaves a
	// truncated buffer that must never be served as a hit.
	if complete && cw.status == http.StatusOK && !cw.overflowed {
		lb.Cache.PutBlob(key, cw.buf.Bytes(), lb.ttlFor(r))
	}
}

// maxCachedBody bounds how large a response body the LB will buffer for
// the cache; larger responses stream through uncached.
const maxCachedBody = 4 << 20

// cacheKey builds the cache key for a request, reporting false for
// requests the LB does not cache (non-GET, or paths outside the query
// API). PromQL queries are normalized so formatting variants of the same
// panel share an entry; everything else (labels, label values) falls back
// to the raw encoded parameters.
func (lb *LB) cacheKey(r *http.Request) (string, bool) {
	if lb.Cache == nil || r.Method != http.MethodGet {
		return "", false
	}
	p := r.URL.Path
	switch {
	case strings.HasSuffix(p, "/api/v1/query"), strings.HasSuffix(p, "/api/v1/query_range"),
		strings.HasSuffix(p, "/api/v1/labels"),
		strings.Contains(p, "/api/v1/label/") && strings.HasSuffix(p, "/values"):
	default:
		return "", false
	}
	q := r.URL.Query()
	if expr := q.Get("query"); expr != "" {
		q.Set("query", querycache.NormalizeQuery(expr))
	}
	return p + "?" + q.Encode(), true // Encode sorts keys: stable across clients
}

// ttlFor picks the entry TTL: range windows that ended well in the past
// are settled (long TTL); anything touching the present decays on the
// fresh TTL so dashboard refreshes track new appends.
func (lb *LB) ttlFor(r *http.Request) time.Duration {
	fresh, settled := lb.CacheTTL, lb.CacheSettledTTL
	if fresh <= 0 {
		fresh = DefaultCacheTTL
	}
	if settled <= 0 {
		settled = DefaultCacheSettledTTL
	}
	if !strings.HasSuffix(r.URL.Path, "/api/v1/query_range") {
		return fresh
	}
	// Prometheus accepts both unix floats and RFC3339 timestamps (promapi's
	// parseTime does the same two-step); an unparseable end conservatively
	// counts as fresh.
	raw := r.URL.Query().Get("end")
	var end time.Time
	if f, err := strconv.ParseFloat(raw, 64); err == nil {
		end = time.UnixMilli(int64(f * 1000))
	} else if t, err := time.Parse(time.RFC3339Nano, raw); err == nil {
		end = t
	} else {
		return fresh
	}
	now := time.Now
	if lb.CacheNow != nil {
		now = lb.CacheNow
	}
	if end.Add(settledMargin).Before(now()) {
		return settled
	}
	return fresh
}

// serveCacheStatus answers /api/v1/status/querycache from the LB's own
// cache (the same envelope promapi uses).
func (lb *LB) serveCacheStatus(w http.ResponseWriter) {
	st := lb.Cache.Stats()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status": "success",
		"data":   map[string]any{"resultType": "querycache", "result": map[string]any{"enabled": true, "stats": st}},
	})
}

// captureWriter tees a proxied response into a bounded buffer so the body
// can be cached after it has streamed to the client.
type captureWriter struct {
	http.ResponseWriter
	status     int
	buf        bytes.Buffer
	limit      int
	overflowed bool
}

func (cw *captureWriter) WriteHeader(code int) {
	cw.status = code
	cw.ResponseWriter.WriteHeader(code)
}

func (cw *captureWriter) Write(p []byte) (int, error) {
	if cw.status == 0 {
		cw.status = http.StatusOK
	}
	if !cw.overflowed {
		if cw.buf.Len()+len(p) > cw.limit {
			cw.overflowed = true
			cw.buf.Reset()
		} else {
			cw.buf.Write(p)
		}
	}
	return cw.ResponseWriter.Write(p)
}

// authorize checks every uuid in the query; it writes the error response
// and returns false on denial.
func (lb *LB) authorize(w http.ResponseWriter, r *http.Request, user, query string) bool {
	if lb.Checker == nil {
		return true
	}
	if lb.Checker.IsAdmin(r.Context(), user) {
		return true
	}
	uuids, err := ExtractUUIDs(query)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	for _, uuid := range uuids {
		owns, err := lb.Checker.Owns(r.Context(), user, uuid)
		if err != nil {
			http.Error(w, "ownership check failed", http.StatusBadGateway)
			return false
		}
		if !owns {
			lb.denied.Add(1)
			http.Error(w, fmt.Sprintf("user %s does not own unit %s", user, uuid), http.StatusForbidden)
			return false
		}
	}
	return true
}

// Failovers returns how many requests succeeded only after failing over
// to another backend.
func (lb *LB) Failovers() int64 { return lb.failovers.Load() }

// roundTrip issues the request against one backend, marking it unhealthy
// on a transport error. No response byte has been written on error, so
// the caller may retry elsewhere.
func (lb *LB) roundTrip(r *http.Request, b *Backend) (*http.Response, error) {
	out := r.Clone(r.Context())
	out.URL.Scheme = b.URL.Scheme
	out.URL.Host = b.URL.Host
	out.URL.Path = singleJoin(b.URL.Path, r.URL.Path)
	out.RequestURI = ""
	out.Host = ""

	transport := lb.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	resp, err := transport.RoundTrip(out)
	if err != nil {
		b.SetHealthy(false)
		return nil, err
	}
	return resp, nil
}

// pickExcluding selects a healthy backend not yet tried; nil when none
// remain.
func (lb *LB) pickExcluding(tried map[*Backend]bool) *Backend {
	for range lb.Backends {
		b := lb.pick()
		if b == nil {
			return nil
		}
		if !tried[b] {
			return b
		}
	}
	return nil
}

// proxy forwards the request to the backend and streams the response,
// reporting whether the body was relayed to completion. When the backend
// fails before a single response byte (transport error), safe requests
// fail over to up to ProxyRetries other healthy backends before giving up
// with a 502 — the HTTP face of the quorum read path: one dead replica
// node must not surface as a query error.
func (lb *LB) proxy(w http.ResponseWriter, r *http.Request, b *Backend) bool {
	lb.proxied.Add(1)
	b.active.Add(1)
	defer b.active.Add(-1)
	b.served.Add(1)

	resp, err := lb.roundTrip(r, b)
	if err != nil && lb.ProxyRetries > 0 && (r.Method == http.MethodGet || r.Method == http.MethodHead) {
		tried := map[*Backend]bool{b: true}
		for i := 0; i < lb.ProxyRetries && err != nil; i++ {
			nb := lb.pickExcluding(tried)
			if nb == nil {
				break
			}
			tried[nb] = true
			nb.served.Add(1)
			resp, err = lb.roundTrip(r, nb)
			if err == nil {
				lb.failovers.Add(1)
			}
		}
	}
	if err != nil {
		lb.proxyErrors.Add(1)
		http.Error(w, "backend error: "+err.Error(), http.StatusBadGateway)
		return false
	}
	defer resp.Body.Close()
	for k, vals := range resp.Header {
		if k == "X-Querycache" && w.Header().Get(k) != "" {
			// The LB already stamped its own cache outcome; don't stack the
			// backend's on top when both layers run a cache.
			continue
		}
		for _, v := range vals {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, err = io.Copy(w, resp.Body)
	return err == nil
}

func singleJoin(a, b string) string {
	switch {
	case strings.HasSuffix(a, "/") && strings.HasPrefix(b, "/"):
		return a + b[1:]
	case !strings.HasSuffix(a, "/") && !strings.HasPrefix(b, "/") && a != "":
		return a + "/" + b
	}
	return a + b
}

// HealthCheck probes every backend's /-/healthy endpoint once, updating
// flags; production deployments run it on a ticker.
func (lb *LB) HealthCheck(ctx context.Context) {
	client := &http.Client{Transport: lb.Transport}
	for _, b := range lb.Backends {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.URL.String()+"/-/healthy", nil)
		if err != nil {
			b.SetHealthy(false)
			continue
		}
		resp, err := client.Do(req)
		if err != nil {
			b.SetHealthy(false)
			continue
		}
		resp.Body.Close()
		b.SetHealthy(resp.StatusCode == http.StatusOK)
	}
}
