// Package lb implements the CEEMS load balancer (paper §II.B.c): a reverse
// proxy in front of one or more Prometheus/Thanos backends that adds the
// access control Grafana lacks. Every query is introspected — the compute
// unit identifiers are extracted from the PromQL expression itself — and
// the requesting user (from the X-Grafana-User header Grafana attaches) is
// checked for ownership against the CEEMS API server, either through its
// DB directly or over its verification endpoint. As a load balancer it
// supports the classic round-robin and least-connection strategies.
package lb

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/labels"
	"repro/internal/promql"
)

// OwnershipChecker answers whether a user may see a compute unit's
// metrics.
type OwnershipChecker interface {
	// Owns reports whether user owns the unit with the given (bare or
	// fully-qualified) identifier.
	Owns(ctx context.Context, user, uuid string) (bool, error)
	// IsAdmin reports whether the user bypasses ownership checks.
	IsAdmin(ctx context.Context, user string) bool
}

// APIServerChecker adapts the in-process API server as the checker — the
// "directly querying the CEEMS API server's DB" path of the paper.
type APIServerChecker struct {
	Server interface {
		OwnsUnit(user, uuid string) (bool, error)
		IsAdmin(user string) bool
	}
}

// Owns implements OwnershipChecker.
func (c *APIServerChecker) Owns(_ context.Context, user, uuid string) (bool, error) {
	return c.Server.OwnsUnit(user, uuid)
}

// IsAdmin implements OwnershipChecker.
func (c *APIServerChecker) IsAdmin(_ context.Context, user string) bool {
	return c.Server.IsAdmin(user)
}

// HTTPChecker queries the API server's verify endpoint — the fallback
// "when the DB file is not accessible".
type HTTPChecker struct {
	BaseURL string
	Client  *http.Client
}

// Owns implements OwnershipChecker via GET /api/v1/units/verify.
func (c *HTTPChecker) Owns(ctx context.Context, user, uuid string) (bool, error) {
	u := fmt.Sprintf("%s/api/v1/units/verify?user=%s&uuid=%s",
		c.BaseURL, url.QueryEscape(user), url.QueryEscape(uuid))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("X-Grafana-User", user)
	client := c.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusForbidden:
		return false, nil
	}
	return false, fmt.Errorf("lb: verify endpoint returned %s", resp.Status)
}

// IsAdmin implements OwnershipChecker; admin resolution happens inside the
// verify endpoint, so the HTTP checker never grants a local bypass.
func (c *HTTPChecker) IsAdmin(context.Context, string) bool { return false }

// Strategy selects how backends are balanced.
type Strategy string

const (
	RoundRobin      Strategy = "round-robin"
	LeastConnection Strategy = "least-connection"
)

// Backend is one Prometheus/Thanos instance behind the LB.
type Backend struct {
	URL *url.URL

	healthy atomic.Bool
	active  atomic.Int64 // in-flight requests
	served  atomic.Int64 // total requests proxied
}

// NewBackend parses the base URL and returns a healthy backend.
func NewBackend(raw string) (*Backend, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("lb: bad backend url %q: %w", raw, err)
	}
	b := &Backend{URL: u}
	b.healthy.Store(true)
	return b, nil
}

// Healthy reports the backend's health flag.
func (b *Backend) Healthy() bool { return b.healthy.Load() }

// SetHealthy updates the health flag (driven by health checks).
func (b *Backend) SetHealthy(v bool) { b.healthy.Store(v) }

// Served returns how many requests this backend has handled.
func (b *Backend) Served() int64 { return b.served.Load() }

// Active returns the number of in-flight requests.
func (b *Backend) Active() int64 { return b.active.Load() }

// LB is the load balancer handler.
type LB struct {
	Backends []*Backend
	Strategy Strategy
	Checker  OwnershipChecker
	// Transport issues the proxied requests; defaults to
	// http.DefaultTransport.
	Transport http.RoundTripper
	// QueryTimeout bounds each proxied request end to end (ownership check
	// plus backend round-trip); 0 disables.
	QueryTimeout time.Duration

	rrNext atomic.Uint64
	mu     sync.Mutex
	denied int64
}

// Denied returns how many queries were rejected by access control.
func (lb *LB) Denied() int64 {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.denied
}

// pick selects a backend per the strategy; nil when none are healthy.
func (lb *LB) pick() *Backend {
	var candidates []*Backend
	for _, b := range lb.Backends {
		if b.Healthy() {
			candidates = append(candidates, b)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	switch lb.Strategy {
	case LeastConnection:
		best := candidates[0]
		for _, b := range candidates[1:] {
			if b.Active() < best.Active() {
				best = b
			}
		}
		return best
	default: // round-robin
		n := lb.rrNext.Add(1)
		return candidates[(n-1)%uint64(len(candidates))]
	}
}

// ExtractUUIDs parses the PromQL expression and collects every compute
// unit identifier it references via uuid label matchers. Equality matchers
// contribute their value; anchored alternation regexps ("123|456")
// contribute each alternative. Regexps that cannot be enumerated return an
// error — the LB fails closed.
func ExtractUUIDs(query string) ([]string, error) {
	// Grafana panels re-issue the same expressions on every refresh; the
	// shared parse cache makes this introspection a lookup, not a parse.
	expr, err := promql.ParseExprCached(query)
	if err != nil {
		return nil, fmt.Errorf("lb: unparseable query: %w", err)
	}
	set := map[string]struct{}{}
	var visitErr error
	walk(expr, func(vs *promql.VectorSelector) {
		for _, m := range vs.Matchers {
			if m.Name != "uuid" {
				continue
			}
			switch m.Type {
			case labels.MatchEqual:
				set[m.Value] = struct{}{}
			case labels.MatchRegexp:
				alts, ok := enumerateAlternation(m.Value)
				if !ok {
					visitErr = fmt.Errorf("lb: uuid regexp %q is not enumerable", m.Value)
					return
				}
				for _, a := range alts {
					set[a] = struct{}{}
				}
			default:
				visitErr = fmt.Errorf("lb: negative uuid matchers are not allowed")
			}
		}
	})
	if visitErr != nil {
		return nil, visitErr
	}
	out := make([]string, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sort.Strings(out)
	return out, nil
}

// walk visits every vector selector in the expression tree.
func walk(e promql.Expr, fn func(*promql.VectorSelector)) {
	switch t := e.(type) {
	case *promql.VectorSelector:
		fn(t)
	case *promql.MatrixSelector:
		fn(t.VS)
	case *promql.ParenExpr:
		walk(t.Expr, fn)
	case *promql.UnaryExpr:
		walk(t.Expr, fn)
	case *promql.AggregateExpr:
		walk(t.Expr, fn)
		if t.Param != nil {
			walk(t.Param, fn)
		}
	case *promql.BinaryExpr:
		walk(t.LHS, fn)
		walk(t.RHS, fn)
	case *promql.Call:
		for _, a := range t.Args {
			walk(a, fn)
		}
	}
}

// enumerateAlternation splits a plain alternation regexp ("a|b|c") into
// its literals; it refuses patterns with other regexp metacharacters.
func enumerateAlternation(pattern string) ([]string, bool) {
	if strings.ContainsAny(pattern, `.*+?()[]{}^$\`) {
		return nil, false
	}
	parts := strings.Split(pattern, "|")
	for _, p := range parts {
		if p == "" {
			return nil, false
		}
	}
	return parts, true
}

// ServeHTTP authorizes and proxies one query request.
func (lb *LB) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if lb.QueryTimeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), lb.QueryTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	user := r.Header.Get("X-Grafana-User")
	if user == "" {
		http.Error(w, "missing X-Grafana-User header", http.StatusUnauthorized)
		return
	}
	query := r.URL.Query().Get("query")
	if query != "" && !lb.authorize(w, r, user, query) {
		return
	}
	backend := lb.pick()
	if backend == nil {
		http.Error(w, "no healthy backends", http.StatusBadGateway)
		return
	}
	lb.proxy(w, r, backend)
}

// authorize checks every uuid in the query; it writes the error response
// and returns false on denial.
func (lb *LB) authorize(w http.ResponseWriter, r *http.Request, user, query string) bool {
	if lb.Checker == nil {
		return true
	}
	if lb.Checker.IsAdmin(r.Context(), user) {
		return true
	}
	uuids, err := ExtractUUIDs(query)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	for _, uuid := range uuids {
		owns, err := lb.Checker.Owns(r.Context(), user, uuid)
		if err != nil {
			http.Error(w, "ownership check failed", http.StatusBadGateway)
			return false
		}
		if !owns {
			lb.mu.Lock()
			lb.denied++
			lb.mu.Unlock()
			http.Error(w, fmt.Sprintf("user %s does not own unit %s", user, uuid), http.StatusForbidden)
			return false
		}
	}
	return true
}

// proxy forwards the request to the backend and streams the response.
func (lb *LB) proxy(w http.ResponseWriter, r *http.Request, b *Backend) {
	b.active.Add(1)
	defer b.active.Add(-1)
	b.served.Add(1)

	out := r.Clone(r.Context())
	out.URL.Scheme = b.URL.Scheme
	out.URL.Host = b.URL.Host
	out.URL.Path = singleJoin(b.URL.Path, r.URL.Path)
	out.RequestURI = ""
	out.Host = ""

	transport := lb.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	resp, err := transport.RoundTrip(out)
	if err != nil {
		b.SetHealthy(false)
		http.Error(w, "backend error: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vals := range resp.Header {
		for _, v := range vals {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func singleJoin(a, b string) string {
	switch {
	case strings.HasSuffix(a, "/") && strings.HasPrefix(b, "/"):
		return a + b[1:]
	case !strings.HasSuffix(a, "/") && !strings.HasPrefix(b, "/") && a != "":
		return a + "/" + b
	}
	return a + b
}

// HealthCheck probes every backend's /-/healthy endpoint once, updating
// flags; production deployments run it on a ticker.
func (lb *LB) HealthCheck(ctx context.Context) {
	client := &http.Client{Transport: lb.Transport}
	for _, b := range lb.Backends {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.URL.String()+"/-/healthy", nil)
		if err != nil {
			b.SetHealthy(false)
			continue
		}
		resp, err := client.Do(req)
		if err != nil {
			b.SetHealthy(false)
			continue
		}
		resp.Body.Close()
		b.SetHealthy(resp.StatusCode == http.StatusOK)
	}
}
