// Scatter-gather quorum reads: the LB-side read path of the cluster
// distribution layer. A query fans out to every replica node, partial
// results come back sorted per node, and the gatherer k-way merges them —
// deduplicating samples that live on several replicas of the same series —
// into exactly what a single node holding all the data would have returned.
//
// Correctness rests on the quorum intersection argument: a write is acked
// only once W of a series' R owners applied it, so any R−W+1 owners of
// that series include at least one that holds every acked sample. The
// gatherer therefore refuses to answer unless every owner group on the
// ring had at least R−W+1 members respond; the per-series union across
// responders then provably contains every acked write, and deduplication
// makes the replica overlap invisible.
package lb

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/workpool"
)

// SeriesBackend is one storage replica the scatter-gather reader queries.
// cluster.Member adapts *tsdb.DB (adding unreachability/warming errors);
// anything speaking the hint-aware Select shape fits.
type SeriesBackend interface {
	SelectWithHints(hints model.SelectHints, ms ...*labels.Matcher) ([]model.Series, error)
	LabelValues(name string) ([]string, error)
	LabelNames() ([]string, error)
}

// Placement answers which replicas own which keys. The cluster package's
// consistent-hash ring implements it; lb depends only on this interface so
// the import points cluster -> lb, matching the existing Sim wiring.
type Placement interface {
	// Groups returns every distinct owner set the ring produces at the
	// configured replication factor, for read-quorum coverage checks.
	Groups() [][]string
}

// Repairer is the optional write-back seam of a SeriesBackend: read repair
// uses it to back-fill a replica the merge caught returning stale or
// missing series. cluster.Member implements it over the member's WAL-backed
// batch appender.
type Repairer interface {
	RepairSamples(ls labels.Labels, samples []model.Sample) error
}

// RepairPlacement is the optional per-series ownership query read repair
// needs on top of Placement: whether a replica that failed to return a
// series was actually supposed to hold it.
type RepairPlacement interface {
	OwnersFor(ls labels.Labels) []string
}

// RepairStats reports read-repair activity.
type RepairStats struct {
	// SeriesRepaired / SamplesRepaired count successful back-fills.
	SeriesRepaired  uint64
	SamplesRepaired uint64
	// Dropped counts repairs discarded because the bounded queue was full
	// or the worker was stopped.
	Dropped uint64
	// Errors counts back-fills the replica rejected (down, partitioned,
	// disk-full — the next anti-entropy pass owns those).
	Errors uint64
}

// ErrQuorumUnavailable is returned when some keyspace region had fewer
// responding replicas than the read quorum requires; the merged answer
// could silently miss acked writes, so the read fails instead.
type ErrQuorumUnavailable struct {
	Group     []string // the owner set missing coverage
	Need, Got int
}

func (e *ErrQuorumUnavailable) Error() string {
	return fmt.Sprintf("lb: read quorum unavailable: owner group %v answered %d/%d (need %d)",
		e.Group, e.Got, len(e.Group), e.Need)
}

// ScatterGather fans hint-aware selects out to a set of named replicas and
// merges the partial results under the quorum coverage rule. It implements
// promql.Queryable and promql.HintedQueryable, so a PromQL engine (or
// promapi handler) evaluates against the cluster exactly as it would
// against one node. Safe for concurrent use; replicas may be added and
// removed while reads are in flight.
type ScatterGather struct {
	// ReadQuorum is the minimum responders per owner group, normally
	// R − W + 1. Values < 1 are treated as 1.
	ReadQuorum int
	// Placement supplies the owner groups; nil skips coverage checks (every
	// reachable replica is merged best-effort — single-node setups).
	Placement Placement

	mu       sync.RWMutex
	replicas map[string]SeriesBackend

	// Read-repair machinery: a lazily started single worker drains a
	// bounded job queue so repairs never sit on the read path's latency.
	repairMu      sync.Mutex
	repairCh      chan repairJob
	repairStop    chan struct{}
	repairStopped bool
	repairWG      sync.WaitGroup

	repairSeries  atomic.Uint64
	repairSamples atomic.Uint64
	repairDropped atomic.Uint64
	repairErrors  atomic.Uint64
}

// NewScatterGather returns a gatherer over no replicas.
func NewScatterGather(p Placement, readQuorum int) *ScatterGather {
	return &ScatterGather{Placement: p, ReadQuorum: readQuorum, replicas: map[string]SeriesBackend{}}
}

// SetReplica installs (or replaces) the backend for a node name.
func (s *ScatterGather) SetReplica(name string, b SeriesBackend) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.replicas[name] = b
}

// RemoveReplica drops a node.
func (s *ScatterGather) RemoveReplica(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.replicas, name)
}

// snapshot returns the replica set in deterministic (sorted-name) order,
// so merges are reproducible regardless of map iteration.
func (s *ScatterGather) snapshot() ([]string, []SeriesBackend) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.replicas))
	for n := range s.replicas {
		names = append(names, n)
	}
	sort.Strings(names)
	backends := make([]SeriesBackend, len(names))
	for i, n := range names {
		backends[i] = s.replicas[n]
	}
	return names, backends
}

// checkCoverage fails unless every owner group had at least ReadQuorum
// responders among ok.
func (s *ScatterGather) checkCoverage(ok map[string]bool) error {
	if s.Placement == nil {
		if len(ok) == 0 {
			return &ErrQuorumUnavailable{Need: 1}
		}
		return nil
	}
	need := s.ReadQuorum
	if need < 1 {
		need = 1
	}
	for _, group := range s.Placement.Groups() {
		got := 0
		for _, member := range group {
			if ok[member] {
				got++
			}
		}
		if got < need {
			return &ErrQuorumUnavailable{Group: group, Need: need, Got: got}
		}
	}
	return nil
}

// Select implements promql.Queryable.
func (s *ScatterGather) Select(mint, maxt int64, ms ...*labels.Matcher) ([]model.Series, error) {
	return s.SelectWithHints(model.SelectHints{Start: mint, End: maxt}, ms...)
}

// SelectWithHints fans the select out to every replica in parallel and
// merges the sorted partials, deduplicating replicated samples. The sample
// budget (hints.SampleLimit) is forwarded to each replica, so enforcement
// is per replica: a query can be charged up to R times its true cost
// before the merge collapses duplicates — never looser than one node, but
// a budget-limit error may fire earlier than on a single-node head.
func (s *ScatterGather) SelectWithHints(hints model.SelectHints, ms ...*labels.Matcher) ([]model.Series, error) {
	names, backends := s.snapshot()
	parts := make([][]model.Series, len(backends))
	errs := make([]error, len(backends))
	workpool.Do(len(backends), 0, func(i int) {
		parts[i], errs[i] = backends[i].SelectWithHints(hints, ms...)
	})
	ok := make(map[string]bool, len(names))
	for i, err := range errs {
		if err != nil {
			if err == model.ErrSampleLimit || isSampleLimit(err) {
				// A budget blowout is a query-shaped error, not node
				// unavailability: surface it like a single node would.
				return nil, err
			}
			parts[i] = nil
			continue
		}
		ok[names[i]] = true
	}
	if err := s.checkCoverage(ok); err != nil {
		return nil, err
	}
	merged := MergeReplicaSeries(parts)
	s.scheduleRepairs(names, backends, parts, ok, merged, hints)
	return merged, nil
}

func isSampleLimit(err error) bool {
	for e := err; e != nil; {
		if e == model.ErrSampleLimit {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// ---- read repair ----

const (
	// repairQueueSize bounds the async back-fill queue; overflow drops the
	// repair (counted) — the next read or anti-entropy pass retries it.
	repairQueueSize = 256
	// maxRepairsPerSelect caps how many series one merge may enqueue, so a
	// wide scan over a badly stale replica cannot monopolize the worker;
	// later selects pick up what this one deferred.
	maxRepairsPerSelect = 64
)

type repairJob struct {
	backend Repairer
	ls      labels.Labels
	samples []model.Sample
}

// RepairStatsSnapshot returns the current read-repair counters.
func (s *ScatterGather) RepairStatsSnapshot() RepairStats {
	return RepairStats{
		SeriesRepaired:  s.repairSeries.Load(),
		SamplesRepaired: s.repairSamples.Load(),
		Dropped:         s.repairDropped.Load(),
		Errors:          s.repairErrors.Load(),
	}
}

// WaitRepairs blocks until every queued repair has been applied or
// dropped — the determinism hook the chaos tests converge on.
func (s *ScatterGather) WaitRepairs() { s.repairWG.Wait() }

// StopRepairs shuts the repair worker down; queued and future repairs are
// dropped (counted). Idempotent.
func (s *ScatterGather) StopRepairs() {
	s.repairMu.Lock()
	defer s.repairMu.Unlock()
	if s.repairStopped {
		return
	}
	s.repairStopped = true
	if s.repairStop != nil {
		close(s.repairStop)
	}
}

// enqueueRepair hands a job to the (lazily started) worker; a full queue
// or stopped worker drops it.
func (s *ScatterGather) enqueueRepair(j repairJob) {
	s.repairMu.Lock()
	if s.repairStopped {
		s.repairMu.Unlock()
		s.repairDropped.Add(1)
		return
	}
	if s.repairCh == nil {
		s.repairCh = make(chan repairJob, repairQueueSize)
		s.repairStop = make(chan struct{})
		go s.repairWorker(s.repairCh, s.repairStop)
	}
	// Non-blocking send under the mutex: the channel is buffered, so this
	// never waits, and holding the lock means no job enters the queue after
	// StopRepairs flipped repairStopped (the WaitGroup stays balanced).
	select {
	case s.repairCh <- j:
		s.repairWG.Add(1)
	default:
		s.repairDropped.Add(1)
	}
	s.repairMu.Unlock()
}

func (s *ScatterGather) repairWorker(ch chan repairJob, stop chan struct{}) {
	for {
		select {
		case j := <-ch:
			if err := j.backend.RepairSamples(j.ls, j.samples); err != nil {
				s.repairErrors.Add(1)
			} else {
				s.repairSeries.Add(1)
				s.repairSamples.Add(uint64(len(j.samples)))
			}
			s.repairWG.Done()
		case <-stop:
			for {
				select {
				case <-ch:
					s.repairDropped.Add(1)
					s.repairWG.Done()
				default:
					return
				}
			}
		}
	}
}

// scheduleRepairs compares each OK responder's partial against the merged
// answer and back-fills what the responder should hold but returned stale
// or missing. Both slices are label-sorted, so the diff is one lockstep
// walk per responder. Only the missing SUFFIX of a series is repaired —
// the tsdb appender rejects t <= lastT, so interior holes are left to the
// full anti-entropy sync; repairing a suffix (or a wholly missing series)
// lands cleanly. Skipped entirely when a sample budget was in play
// (per-replica truncation would fake staleness) or when the placement
// cannot answer per-series ownership.
func (s *ScatterGather) scheduleRepairs(names []string, backends []SeriesBackend, parts [][]model.Series, ok map[string]bool, merged []model.Series, hints model.SelectHints) {
	if len(merged) == 0 || hints.SampleLimit > 0 {
		return
	}
	rp, _ := s.Placement.(RepairPlacement)
	if rp == nil {
		return
	}
	budget := maxRepairsPerSelect
	for i, name := range names {
		if !ok[name] {
			continue
		}
		rep, isRep := backends[i].(Repairer)
		if !isRep {
			continue
		}
		part := parts[i]
		j := 0
		for _, ms := range merged {
			for j < len(part) && labels.Compare(part[j].Labels, ms.Labels) < 0 {
				j++
			}
			var have []model.Sample
			if j < len(part) && labels.Compare(part[j].Labels, ms.Labels) == 0 {
				have = part[j].Samples
			}
			missing := missingSuffix(have, ms.Samples)
			if len(missing) == 0 || !ownedBy(rp.OwnersFor(ms.Labels), name) {
				continue
			}
			if budget <= 0 {
				return
			}
			budget--
			s.enqueueRepair(repairJob{backend: rep, ls: ms.Labels, samples: missing})
		}
	}
}

// missingSuffix returns the samples of want past have's last timestamp —
// everything the replica can actually accept via append.
func missingSuffix(have, want []model.Sample) []model.Sample {
	if len(have) == 0 {
		return want
	}
	lastT := have[len(have)-1].T
	if want[len(want)-1].T <= lastT {
		return nil
	}
	lo := sort.Search(len(want), func(k int) bool { return want[k].T > lastT })
	return want[lo:]
}

func ownedBy(owners []string, name string) bool {
	for _, o := range owners {
		if o == name {
			return true
		}
	}
	return false
}

// LabelValues merges the distinct values across replicas under the same
// coverage rule.
func (s *ScatterGather) LabelValues(name string) ([]string, error) {
	return s.gatherStrings(func(b SeriesBackend) ([]string, error) { return b.LabelValues(name) })
}

// LabelNames merges label names across replicas under the same coverage
// rule.
func (s *ScatterGather) LabelNames() ([]string, error) {
	return s.gatherStrings(func(b SeriesBackend) ([]string, error) { return b.LabelNames() })
}

func (s *ScatterGather) gatherStrings(f func(SeriesBackend) ([]string, error)) ([]string, error) {
	names, backends := s.snapshot()
	parts := make([][]string, len(backends))
	errs := make([]error, len(backends))
	workpool.Do(len(backends), 0, func(i int) {
		parts[i], errs[i] = f(backends[i])
	})
	ok := make(map[string]bool, len(names))
	for i, err := range errs {
		if err == nil {
			ok[names[i]] = true
		} else {
			parts[i] = nil
		}
	}
	if err := s.checkCoverage(ok); err != nil {
		return nil, err
	}
	return labels.UnionSorted(parts...), nil
}

// MergeReplicaSeries merges per-replica slices, each sorted by labels,
// into one sorted slice — the PR 1 k-way tournament merge, extended with
// combining: the same series coming back from several replicas merges into
// one entry whose samples are the timestamp-deduplicated union.
func MergeReplicaSeries(parts [][]model.Series) []model.Series {
	live := make([][]model.Series, 0, len(parts))
	for _, p := range parts {
		if len(p) > 0 {
			live = append(live, p)
		}
	}
	switch len(live) {
	case 0:
		return []model.Series{}
	case 1:
		return live[0]
	}
	for len(live) > 1 {
		merged := live[:0]
		for i := 0; i < len(live); i += 2 {
			if i+1 == len(live) {
				merged = append(merged, live[i])
				break
			}
			merged = append(merged, mergeTwoDedup(live[i], live[i+1]))
		}
		live = merged
	}
	return live[0]
}

// mergeTwoDedup merges two label-sorted slices, combining equal-labels
// series by unioning their samples.
func mergeTwoDedup(a, b []model.Series) []model.Series {
	out := make([]model.Series, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch c := labels.Compare(a[i].Labels, b[j].Labels); {
		case c < 0:
			out = append(out, a[i])
			i++
		case c > 0:
			out = append(out, b[j])
			j++
		default:
			out = append(out, model.Series{
				Labels:  a[i].Labels,
				Samples: unionSamples(a[i].Samples, b[j].Samples),
			})
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// unionSamples merges two ascending sample slices, keeping one sample per
// timestamp. Replicas of a series received identical routed writes, so
// colliding timestamps carry identical values; the left copy wins, which
// is deterministic because merge order is the sorted replica-name order.
func unionSamples(a, b []model.Sample) []model.Sample {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]model.Sample, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].T < b[j].T:
			out = append(out, a[i])
			i++
		case a[i].T > b[j].T:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
