// Scatter-gather quorum reads: the LB-side read path of the cluster
// distribution layer. A query fans out to every replica node, partial
// results come back sorted per node, and the gatherer k-way merges them —
// deduplicating samples that live on several replicas of the same series —
// into exactly what a single node holding all the data would have returned.
//
// Correctness rests on the quorum intersection argument: a write is acked
// only once W of a series' R owners applied it, so any R−W+1 owners of
// that series include at least one that holds every acked sample. The
// gatherer therefore refuses to answer unless every owner group on the
// ring had at least R−W+1 members respond; the per-series union across
// responders then provably contains every acked write, and deduplication
// makes the replica overlap invisible.
package lb

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/workpool"
)

// SeriesBackend is one storage replica the scatter-gather reader queries.
// cluster.Member adapts *tsdb.DB (adding unreachability/warming errors);
// anything speaking the hint-aware Select shape fits.
type SeriesBackend interface {
	SelectWithHints(hints model.SelectHints, ms ...*labels.Matcher) ([]model.Series, error)
	LabelValues(name string) ([]string, error)
	LabelNames() ([]string, error)
}

// Placement answers which replicas own which keys. The cluster package's
// consistent-hash ring implements it; lb depends only on this interface so
// the import points cluster -> lb, matching the existing Sim wiring.
type Placement interface {
	// Groups returns every distinct owner set the ring produces at the
	// configured replication factor, for read-quorum coverage checks.
	Groups() [][]string
}

// ErrQuorumUnavailable is returned when some keyspace region had fewer
// responding replicas than the read quorum requires; the merged answer
// could silently miss acked writes, so the read fails instead.
type ErrQuorumUnavailable struct {
	Group     []string // the owner set missing coverage
	Need, Got int
}

func (e *ErrQuorumUnavailable) Error() string {
	return fmt.Sprintf("lb: read quorum unavailable: owner group %v answered %d/%d (need %d)",
		e.Group, e.Got, len(e.Group), e.Need)
}

// ScatterGather fans hint-aware selects out to a set of named replicas and
// merges the partial results under the quorum coverage rule. It implements
// promql.Queryable and promql.HintedQueryable, so a PromQL engine (or
// promapi handler) evaluates against the cluster exactly as it would
// against one node. Safe for concurrent use; replicas may be added and
// removed while reads are in flight.
type ScatterGather struct {
	// ReadQuorum is the minimum responders per owner group, normally
	// R − W + 1. Values < 1 are treated as 1.
	ReadQuorum int
	// Placement supplies the owner groups; nil skips coverage checks (every
	// reachable replica is merged best-effort — single-node setups).
	Placement Placement

	mu       sync.RWMutex
	replicas map[string]SeriesBackend
}

// NewScatterGather returns a gatherer over no replicas.
func NewScatterGather(p Placement, readQuorum int) *ScatterGather {
	return &ScatterGather{Placement: p, ReadQuorum: readQuorum, replicas: map[string]SeriesBackend{}}
}

// SetReplica installs (or replaces) the backend for a node name.
func (s *ScatterGather) SetReplica(name string, b SeriesBackend) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.replicas[name] = b
}

// RemoveReplica drops a node.
func (s *ScatterGather) RemoveReplica(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.replicas, name)
}

// snapshot returns the replica set in deterministic (sorted-name) order,
// so merges are reproducible regardless of map iteration.
func (s *ScatterGather) snapshot() ([]string, []SeriesBackend) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.replicas))
	for n := range s.replicas {
		names = append(names, n)
	}
	sort.Strings(names)
	backends := make([]SeriesBackend, len(names))
	for i, n := range names {
		backends[i] = s.replicas[n]
	}
	return names, backends
}

// checkCoverage fails unless every owner group had at least ReadQuorum
// responders among ok.
func (s *ScatterGather) checkCoverage(ok map[string]bool) error {
	if s.Placement == nil {
		if len(ok) == 0 {
			return &ErrQuorumUnavailable{Need: 1}
		}
		return nil
	}
	need := s.ReadQuorum
	if need < 1 {
		need = 1
	}
	for _, group := range s.Placement.Groups() {
		got := 0
		for _, member := range group {
			if ok[member] {
				got++
			}
		}
		if got < need {
			return &ErrQuorumUnavailable{Group: group, Need: need, Got: got}
		}
	}
	return nil
}

// Select implements promql.Queryable.
func (s *ScatterGather) Select(mint, maxt int64, ms ...*labels.Matcher) ([]model.Series, error) {
	return s.SelectWithHints(model.SelectHints{Start: mint, End: maxt}, ms...)
}

// SelectWithHints fans the select out to every replica in parallel and
// merges the sorted partials, deduplicating replicated samples. The sample
// budget (hints.SampleLimit) is forwarded to each replica, so enforcement
// is per replica: a query can be charged up to R times its true cost
// before the merge collapses duplicates — never looser than one node, but
// a budget-limit error may fire earlier than on a single-node head.
func (s *ScatterGather) SelectWithHints(hints model.SelectHints, ms ...*labels.Matcher) ([]model.Series, error) {
	names, backends := s.snapshot()
	parts := make([][]model.Series, len(backends))
	errs := make([]error, len(backends))
	workpool.Do(len(backends), 0, func(i int) {
		parts[i], errs[i] = backends[i].SelectWithHints(hints, ms...)
	})
	ok := make(map[string]bool, len(names))
	for i, err := range errs {
		if err != nil {
			if err == model.ErrSampleLimit || isSampleLimit(err) {
				// A budget blowout is a query-shaped error, not node
				// unavailability: surface it like a single node would.
				return nil, err
			}
			parts[i] = nil
			continue
		}
		ok[names[i]] = true
	}
	if err := s.checkCoverage(ok); err != nil {
		return nil, err
	}
	return MergeReplicaSeries(parts), nil
}

func isSampleLimit(err error) bool {
	for e := err; e != nil; {
		if e == model.ErrSampleLimit {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// LabelValues merges the distinct values across replicas under the same
// coverage rule.
func (s *ScatterGather) LabelValues(name string) ([]string, error) {
	return s.gatherStrings(func(b SeriesBackend) ([]string, error) { return b.LabelValues(name) })
}

// LabelNames merges label names across replicas under the same coverage
// rule.
func (s *ScatterGather) LabelNames() ([]string, error) {
	return s.gatherStrings(func(b SeriesBackend) ([]string, error) { return b.LabelNames() })
}

func (s *ScatterGather) gatherStrings(f func(SeriesBackend) ([]string, error)) ([]string, error) {
	names, backends := s.snapshot()
	parts := make([][]string, len(backends))
	errs := make([]error, len(backends))
	workpool.Do(len(backends), 0, func(i int) {
		parts[i], errs[i] = f(backends[i])
	})
	ok := make(map[string]bool, len(names))
	for i, err := range errs {
		if err == nil {
			ok[names[i]] = true
		} else {
			parts[i] = nil
		}
	}
	if err := s.checkCoverage(ok); err != nil {
		return nil, err
	}
	return labels.UnionSorted(parts...), nil
}

// MergeReplicaSeries merges per-replica slices, each sorted by labels,
// into one sorted slice — the PR 1 k-way tournament merge, extended with
// combining: the same series coming back from several replicas merges into
// one entry whose samples are the timestamp-deduplicated union.
func MergeReplicaSeries(parts [][]model.Series) []model.Series {
	live := make([][]model.Series, 0, len(parts))
	for _, p := range parts {
		if len(p) > 0 {
			live = append(live, p)
		}
	}
	switch len(live) {
	case 0:
		return []model.Series{}
	case 1:
		return live[0]
	}
	for len(live) > 1 {
		merged := live[:0]
		for i := 0; i < len(live); i += 2 {
			if i+1 == len(live) {
				merged = append(merged, live[i])
				break
			}
			merged = append(merged, mergeTwoDedup(live[i], live[i+1]))
		}
		live = merged
	}
	return live[0]
}

// mergeTwoDedup merges two label-sorted slices, combining equal-labels
// series by unioning their samples.
func mergeTwoDedup(a, b []model.Series) []model.Series {
	out := make([]model.Series, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch c := labels.Compare(a[i].Labels, b[j].Labels); {
		case c < 0:
			out = append(out, a[i])
			i++
		case c > 0:
			out = append(out, b[j])
			j++
		default:
			out = append(out, model.Series{
				Labels:  a[i].Labels,
				Samples: unionSamples(a[i].Samples, b[j].Samples),
			})
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// unionSamples merges two ascending sample slices, keeping one sample per
// timestamp. Replicas of a series received identical routed writes, so
// colliding timestamps carry identical values; the left copy wins, which
// is deterministic because merge order is the sorted replica-name order.
func unionSamples(a, b []model.Sample) []model.Sample {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]model.Sample, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].T < b[j].T:
			out = append(out, a[i])
			i++
		case a[i].T > b[j].T:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
