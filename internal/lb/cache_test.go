package lb

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/querycache"
)

// newCachedLB is newTestLB plus a response cache on a controllable clock.
func newCachedLB(t *testing.T, nBackends int) (*LB, *[]int, *time.Time) {
	t.Helper()
	lb, _, counts := newTestLB(t, RoundRobin, nBackends)
	now := time.Unix(10_000, 0)
	clock := func() time.Time { return now }
	lb.Cache = querycache.New(querycache.Options{MaxBytes: 1 << 20, Clock: clock})
	lb.CacheNow = clock
	lb.CacheTTL = 15 * time.Second
	lb.CacheSettledTTL = 10 * time.Minute
	return lb, counts, &now
}

func TestLBResponseCacheServesRepeats(t *testing.T) {
	lb, counts, _ := newCachedLB(t, 1)
	const path = `/api/v1/query?query=m{uuid="a1"}`

	rec1 := get(t, lb, path, "alice")
	if rec1.Code != 200 || rec1.Header().Get("X-Querycache") != "miss" {
		t.Fatalf("first = %d, X-Querycache %q", rec1.Code, rec1.Header().Get("X-Querycache"))
	}
	rec2 := get(t, lb, path, "alice")
	if rec2.Code != 200 || rec2.Header().Get("X-Querycache") != "hit" {
		t.Fatalf("repeat = %d, X-Querycache %q", rec2.Code, rec2.Header().Get("X-Querycache"))
	}
	if rec1.Body.String() != rec2.Body.String() {
		t.Fatal("cached body differs from proxied body")
	}
	if (*counts)[0] != 1 {
		t.Fatalf("backend served %d requests, want 1", (*counts)[0])
	}
	// Formatting variants of the same query share the entry.
	rec3 := get(t, lb, `/api/v1/query?query=m%7Buuid%3D%22a1%22%20%7D`, "alice")
	if rec3.Header().Get("X-Querycache") != "hit" {
		t.Fatalf("normalized variant = %q, want hit", rec3.Header().Get("X-Querycache"))
	}
}

func TestLBCacheAfterAccessControl(t *testing.T) {
	lb, counts, _ := newCachedLB(t, 1)
	const path = `/api/v1/query?query=m{uuid="a1"}`

	// alice (owner) fills the cache.
	if rec := get(t, lb, path, "alice"); rec.Code != 200 {
		t.Fatalf("owner = %d", rec.Code)
	}
	// bob does not own a1: denied even though the payload is cached.
	if rec := get(t, lb, path, "bob"); rec.Code != 403 {
		t.Fatalf("non-owner with warm cache = %d, want 403", rec.Code)
	}
	// Another authorized user may share the entry — the payload is keyed by
	// the query, not the requester.
	if rec := get(t, lb, path, "anna"); rec.Code != 200 || rec.Header().Get("X-Querycache") != "hit" {
		t.Fatalf("second owner = %d, %q", rec.Code, rec.Header().Get("X-Querycache"))
	}
	if (*counts)[0] != 1 {
		t.Fatalf("backend served %d, want 1", (*counts)[0])
	}
	// A denial is never cached.
	if rec := get(t, lb, path, "bob"); rec.Code != 403 {
		t.Fatalf("repeat non-owner = %d, want 403", rec.Code)
	}
}

func TestLBCacheTTLExpiry(t *testing.T) {
	lb, counts, now := newCachedLB(t, 1)
	const path = `/api/v1/query?query=up`

	get(t, lb, path, "alice")
	get(t, lb, path, "alice")
	if (*counts)[0] != 1 {
		t.Fatalf("backend served %d, want 1 before expiry", (*counts)[0])
	}
	*now = now.Add(16 * time.Second) // past CacheTTL
	if rec := get(t, lb, path, "alice"); rec.Header().Get("X-Querycache") != "miss" {
		t.Fatalf("post-expiry = %q, want miss", rec.Header().Get("X-Querycache"))
	}
	if (*counts)[0] != 2 {
		t.Fatalf("backend served %d, want 2 after expiry", (*counts)[0])
	}
}

func TestLBCacheSettledRangeOutlivesFreshTTL(t *testing.T) {
	lb, counts, now := newCachedLB(t, 1)
	// Window ended an hour before "now": settled, long TTL.
	settled := "/api/v1/query_range?query=up&start=5000&end=6000&step=15"
	// Window ending at "now": fresh, short TTL.
	fresh := "/api/v1/query_range?query=up&start=9000&end=10000&step=15"

	get(t, lb, settled, "alice")
	get(t, lb, fresh, "alice")
	*now = now.Add(1 * time.Minute)
	if rec := get(t, lb, settled, "alice"); rec.Header().Get("X-Querycache") != "hit" {
		t.Fatalf("settled window after 1m = %q, want hit", rec.Header().Get("X-Querycache"))
	}
	if rec := get(t, lb, fresh, "alice"); rec.Header().Get("X-Querycache") != "miss" {
		t.Fatalf("fresh window after 1m = %q, want miss", rec.Header().Get("X-Querycache"))
	}
	if (*counts)[0] != 3 {
		t.Fatalf("backend served %d, want 3", (*counts)[0])
	}
}

func TestLBCachesNonPromQLPayloads(t *testing.T) {
	lb, counts, _ := newCachedLB(t, 1)
	get(t, lb, "/api/v1/labels", "alice")
	if rec := get(t, lb, "/api/v1/labels", "alice"); rec.Header().Get("X-Querycache") != "hit" {
		t.Fatalf("labels repeat = %q, want hit", rec.Header().Get("X-Querycache"))
	}
	get(t, lb, "/api/v1/label/instance/values", "alice")
	if rec := get(t, lb, "/api/v1/label/instance/values", "alice"); rec.Header().Get("X-Querycache") != "hit" {
		t.Fatalf("label values repeat = %q, want hit", rec.Header().Get("X-Querycache"))
	}
	if (*counts)[0] != 2 {
		t.Fatalf("backend served %d, want 2", (*counts)[0])
	}
	// Paths outside the query API stream through uncached.
	get(t, lb, "/api/v1/units", "alice")
	get(t, lb, "/api/v1/units", "alice")
	if (*counts)[0] != 4 {
		t.Fatalf("backend served %d, want 4 (non-query paths uncached)", (*counts)[0])
	}
}

func TestLBNeverCachesTruncatedBody(t *testing.T) {
	var hits atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		// Promise 100 bytes, deliver 10, die: the client side sees an
		// unexpected EOF mid-body.
		w.Header().Set("Content-Length", "100")
		w.Write([]byte("0123456789"))
	}))
	defer backend.Close()
	b, err := NewBackend(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	lb := &LB{
		Backends: []*Backend{b},
		Checker:  &stubChecker{},
		Cache:    querycache.New(querycache.Options{MaxBytes: 1 << 20}),
	}
	get(t, lb, `/api/v1/query?query=up`, "alice")
	if rec := get(t, lb, `/api/v1/query?query=up`, "alice"); rec.Header().Get("X-Querycache") == "hit" {
		t.Fatal("truncated response served from cache")
	}
	if hits.Load() != 2 {
		t.Fatalf("backend hits = %d, want 2 (truncated body must not be cached)", hits.Load())
	}
}

func TestLBCacheStatusEndpoint(t *testing.T) {
	lb, _, _ := newCachedLB(t, 1)
	get(t, lb, `/api/v1/query?query=up`, "alice")
	get(t, lb, `/api/v1/query?query=up`, "alice")
	// The status endpoint is an admin surface: anonymous and non-admin
	// requests are rejected before any counters leak.
	if rec := get(t, lb, "/api/v1/status/querycache", ""); rec.Code != 401 {
		t.Fatalf("anonymous status = %d, want 401", rec.Code)
	}
	if rec := get(t, lb, "/api/v1/status/querycache", "alice"); rec.Code != 403 {
		t.Fatalf("non-admin status = %d, want 403", rec.Code)
	}
	rec := get(t, lb, "/api/v1/status/querycache", "root")
	if rec.Code != 200 {
		t.Fatalf("admin status endpoint = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{`"enabled":true`, `"hits":1`} {
		if !contains(body, want) {
			t.Fatalf("status body missing %q: %s", want, body)
		}
	}
}

// TestLBLabelsMatchersAuthorized: the labels/label-values endpoints carry
// their scoping in match[] selectors, not a query expression; those must
// pass the same ownership check — especially now that their responses are
// cached and shared across users.
func TestLBLabelsMatchersAuthorized(t *testing.T) {
	lb, counts, _ := newCachedLB(t, 1)

	// Foreign uuid in a match[] selector: denied, nothing cached.
	if rec := get(t, lb, `/api/v1/labels?match%5B%5D=m%7Buuid%3D%22b7%22%7D`, "alice"); rec.Code != 403 {
		t.Fatalf("foreign match[] = %d, want 403", rec.Code)
	}
	if (*counts)[0] != 0 {
		t.Fatalf("backend served %d denied requests", (*counts)[0])
	}
	// Owned uuid: allowed and cached.
	owned := `/api/v1/label/instance/values?match%5B%5D=m%7Buuid%3D%22a1%22%7D`
	if rec := get(t, lb, owned, "alice"); rec.Code != 200 {
		t.Fatalf("owned match[] = %d", rec.Code)
	}
	// A non-owner repeat of the identical request must be denied, never
	// served from the warm cache.
	if rec := get(t, lb, owned, "bob"); rec.Code != 403 {
		t.Fatalf("non-owner with warm label cache = %d, want 403", rec.Code)
	}
	// Unenumerable match[] regexps fail closed like query expressions.
	if rec := get(t, lb, `/api/v1/labels?match%5B%5D=m%7Buuid%3D~%22a.%2A%22%7D`, "alice"); rec.Code != 400 {
		t.Fatalf("wildcard match[] = %d, want 400", rec.Code)
	}
	if (*counts)[0] != 1 {
		t.Fatalf("backend served %d, want 1 (only the authorized request)", (*counts)[0])
	}
}

func TestLBCacheSettledRFC3339End(t *testing.T) {
	lb, counts, now := newCachedLB(t, 1)
	// Same settled window as the float-format test, end given as RFC3339
	// (unix 6000 = 1970-01-01T01:40:00Z): must get the long settled TTL.
	settled := "/api/v1/query_range?query=up&start=1970-01-01T01%3A23%3A20Z&end=1970-01-01T01%3A40%3A00Z&step=15"
	get(t, lb, settled, "alice")
	*now = now.Add(1 * time.Minute)
	if rec := get(t, lb, settled, "alice"); rec.Header().Get("X-Querycache") != "hit" {
		t.Fatalf("RFC3339 settled window after 1m = %q, want hit", rec.Header().Get("X-Querycache"))
	}
	if (*counts)[0] != 1 {
		t.Fatalf("backend served %d, want 1", (*counts)[0])
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestLBConcurrentDistinctKeysDoNotSerialize is the regression test for the
// old single-cache-mutex design: two concurrent queries on different cache
// keys must both be in flight at the backend at the same moment. The
// backend holds each request until it has seen both, so the test deadlocks
// (and fails on the watchdog) iff the LB serializes them; nothing here
// depends on timing when the LB is concurrent.
func TestLBConcurrentDistinctKeysDoNotSerialize(t *testing.T) {
	const parallel = 2
	var inFlight atomic.Int64
	var peak atomic.Int64
	bothArrived := make(chan struct{})
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		if n == parallel {
			close(bothArrived)
		}
		select {
		case <-bothArrived:
		case <-time.After(5 * time.Second):
		}
		w.Write([]byte(`{"status":"success"}`))
	}))
	defer backend.Close()

	b, err := NewBackend(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	lb := &LB{
		Backends: []*Backend{b},
		Checker:  &stubChecker{},
		Cache:    querycache.New(querycache.Options{MaxBytes: 1 << 20}),
	}
	var wg sync.WaitGroup
	for i := 0; i < parallel; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			paths := []string{`/api/v1/query?query=m{uuid="a1"}`, `/api/v1/query?query=m{uuid="a2"}`}
			rec := get(t, lb, paths[i], "alice")
			if rec.Code != 200 {
				t.Errorf("request %d = %d", i, rec.Code)
			}
		}()
	}
	wg.Wait()
	if peak.Load() != parallel {
		t.Fatalf("peak concurrency at backend = %d, want %d: distinct cache keys serialized", peak.Load(), parallel)
	}
}
