package lb

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/labels"
	"repro/internal/model"
)

// fakeBackend serves a fixed series dump or a fixed error.
type fakeBackend struct {
	series []model.Series
	err    error
}

func (f *fakeBackend) SelectWithHints(model.SelectHints, ...*labels.Matcher) ([]model.Series, error) {
	return f.series, f.err
}
func (f *fakeBackend) LabelValues(string) ([]string, error) {
	if f.err != nil {
		return nil, f.err
	}
	var out []string
	for _, s := range f.series {
		out = append(out, s.Labels.Name())
	}
	return labels.UnionSorted(out), nil
}
func (f *fakeBackend) LabelNames() ([]string, error) {
	if f.err != nil {
		return nil, f.err
	}
	return []string{labels.MetricName}, nil
}

// staticPlacement pins the owner groups.
type staticPlacement struct{ groups [][]string }

func (p *staticPlacement) Groups() [][]string { return p.groups }

func series(name string, samples ...model.Sample) model.Series {
	return model.Series{
		Labels:  labels.FromStrings(labels.MetricName, name),
		Samples: samples,
	}
}

func sample(t int64, v float64) model.Sample { return model.Sample{T: t, V: v} }

// TestScatterMergeDedup: replicas holding overlapping copies of the same
// series merge into exactly one series with the timestamp-deduplicated
// sample union, and disjoint series interleave in label order.
func TestScatterMergeDedup(t *testing.T) {
	sg := NewScatterGather(&staticPlacement{groups: [][]string{{"a", "b"}}}, 1)
	sg.SetReplica("a", &fakeBackend{series: []model.Series{
		series("cpu", sample(1, 10), sample(2, 20)),
		series("mem", sample(1, 1)),
	}})
	sg.SetReplica("b", &fakeBackend{series: []model.Series{
		series("cpu", sample(2, 20), sample(3, 30)),
		series("net", sample(5, 5)),
	}})

	got, err := sg.Select(0, 100)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	want := []model.Series{
		series("cpu", sample(1, 10), sample(2, 20), sample(3, 30)),
		series("mem", sample(1, 1)),
		series("net", sample(5, 5)),
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("merged result:\n got %v\nwant %v", got, want)
	}
}

// TestScatterQuorumCoverage: the gatherer answers while every owner group
// keeps ReadQuorum responders and refuses the moment one group drops
// below it.
func TestScatterQuorumCoverage(t *testing.T) {
	place := &staticPlacement{groups: [][]string{{"a", "b", "c"}}}
	sg := NewScatterGather(place, 2)
	healthy := func() {
		for _, n := range []string{"a", "b", "c"} {
			sg.SetReplica(n, &fakeBackend{series: []model.Series{series("cpu", sample(1, 1))}})
		}
	}

	healthy()
	sg.SetReplica("c", &fakeBackend{err: errors.New("down")})
	if _, err := sg.Select(0, 10); err != nil {
		t.Fatalf("one failure under R=3 read-quorum=2 should answer, got %v", err)
	}

	sg.SetReplica("b", &fakeBackend{err: errors.New("down")})
	_, err := sg.Select(0, 10)
	var qerr *ErrQuorumUnavailable
	if !errors.As(err, &qerr) {
		t.Fatalf("two failures should fail coverage, got %v", err)
	}
	if qerr.Got != 1 || qerr.Need != 2 {
		t.Fatalf("coverage error reported got=%d need=%d, want 1/2", qerr.Got, qerr.Need)
	}

	// LabelValues obeys the same rule.
	if _, err := sg.LabelValues(labels.MetricName); !errors.As(err, &qerr) {
		t.Fatalf("LabelValues under lost coverage: got %v", err)
	}
	healthy()
	vals, err := sg.LabelValues(labels.MetricName)
	if err != nil || len(vals) == 0 {
		t.Fatalf("LabelValues after recovery: %v %v", vals, err)
	}
}

// TestScatterSampleLimit: a replica blowing the sample budget is a query
// error, not node unavailability — it surfaces even with quorum intact.
func TestScatterSampleLimit(t *testing.T) {
	sg := NewScatterGather(&staticPlacement{groups: [][]string{{"a", "b"}}}, 1)
	sg.SetReplica("a", &fakeBackend{series: []model.Series{series("cpu", sample(1, 1))}})
	sg.SetReplica("b", &fakeBackend{err: fmt.Errorf("select: %w", model.ErrSampleLimit)})
	if _, err := sg.Select(0, 10); !errors.Is(err, model.ErrSampleLimit) {
		t.Fatalf("sample-limit blowout should surface, got %v", err)
	}
}

// TestScatterNoReplicas: an empty gatherer refuses rather than returning
// an empty result that looks like real data.
func TestScatterNoReplicas(t *testing.T) {
	sg := NewScatterGather(nil, 1)
	var qerr *ErrQuorumUnavailable
	if _, err := sg.Select(0, 10); !errors.As(err, &qerr) {
		t.Fatalf("empty replica set should fail coverage, got %v", err)
	}
}
