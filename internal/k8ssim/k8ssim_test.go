package k8ssim

import (
	"testing"
	"time"

	"repro/internal/exporter"
	"repro/internal/hw"
	"repro/internal/model"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func newNode(t *testing.T, name string) *hw.Node {
	t.Helper()
	spec := hw.DefaultIntelSpec(name)
	spec.NoiseFrac = 0
	n, err := hw.NewNode(spec, t0)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRunPodLifecycle(t *testing.T) {
	node := newNode(t, "w1")
	m := NewManager("k8s", t0, node)
	p, err := m.Run(PodSpec{
		Name: "train", Namespace: "ml", User: "svc-ml",
		CPURequest: 8, MemBytes: 16 << 30, Duration: 30 * time.Second,
		CPUUtil: func(time.Duration) float64 { return 1.0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	path := "/sys/fs/cgroup/kubepods.slice/kubepods-pod" + p.UID + ".slice/cpu.stat"
	if !node.FS.Exists(path) {
		t.Errorf("missing cgroup %s", path)
	}
	m.Advance(15 * time.Second)
	// The k8s cgroup collector sees the pod.
	c := &exporter.CgroupCollector{FS: node.FS, Layout: exporter.K8sLayout()}
	fams, err := c.Collect()
	if err != nil {
		t.Fatal(err)
	}
	seen := false
	for _, f := range fams {
		if f.Name != "ceems_compute_unit_cpu_usage_seconds_total" {
			continue
		}
		for _, metric := range f.Metrics {
			if metric.Labels.Get("uuid") == p.UID && metric.Labels.Get("manager") == "k8s" {
				seen = true
			}
		}
	}
	if !seen {
		t.Error("k8s collector missed the pod")
	}
	// Auto-completion after Duration.
	m.Advance(30 * time.Second)
	if p.State != model.UnitCompleted {
		t.Errorf("pod state = %s", p.State)
	}
	if node.FS.Exists(path) {
		t.Error("cgroup survived completion")
	}
}

func TestEvict(t *testing.T) {
	node := newNode(t, "w1")
	m := NewManager("k8s", t0, node)
	p, _ := m.Run(PodSpec{Name: "x", Namespace: "ns", User: "u", CPURequest: 4, MemBytes: 1 << 30})
	if err := m.Evict(p.UID); err != nil {
		t.Fatal(err)
	}
	if p.State != model.UnitCancelled {
		t.Errorf("state = %s", p.State)
	}
	if err := m.Evict(p.UID); err == nil {
		t.Error("double evict accepted")
	}
}

func TestCapacityAndErrors(t *testing.T) {
	node := newNode(t, "w1")
	m := NewManager("k8s", t0, node)
	if _, err := m.Run(PodSpec{CPURequest: 0}); err == nil {
		t.Error("zero-cpu pod accepted")
	}
	if _, err := m.Run(PodSpec{Name: "big", Namespace: "n", User: "u", CPURequest: 65, MemBytes: 1}); err == nil {
		t.Error("oversized pod accepted")
	}
}

func TestUnits(t *testing.T) {
	node := newNode(t, "w1")
	m := NewManager("k8s", t0, node)
	m.Run(PodSpec{Name: "a", Namespace: "ml", User: "svc", CPURequest: 2, MemBytes: 1 << 30})
	m.Advance(time.Minute)
	units := m.Units(t0)
	if len(units) != 1 {
		t.Fatalf("units = %d", len(units))
	}
	u := units[0]
	if u.Manager != model.ManagerK8s || u.Project != "ml" || u.ElapsedSec != 60 {
		t.Errorf("unit = %+v", u)
	}
}
