// Package k8ssim simulates a Kubernetes node pool managed through kubelet:
// pods are workloads whose cgroups live under kubepods.slice with pod-UID
// slice names, matching the CEEMS exporter's k8s cgroup layout. Together
// with openstacksim it demonstrates the stack's resource-manager
// agnosticism (and the paper's Kubernetes future work).
package k8ssim

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/hw"
	"repro/internal/model"
)

// PodSpec describes a pod submission.
type PodSpec struct {
	Name       string
	Namespace  string // doubles as the accounting project
	User       string // service-account-ish owner
	CPURequest int    // whole cores (millicore granularity not modelled)
	MemBytes   int64
	// Duration of the pod's work; 0 means run until Evict.
	Duration time.Duration
	CPUUtil  func(elapsed time.Duration) float64
	MemUtil  func(elapsed time.Duration) float64
}

// Pod is a scheduled or finished pod.
type Pod struct {
	UID  string
	Spec PodSpec

	State     model.UnitState
	CreatedAt time.Time
	StartedAt time.Time
	EndedAt   time.Time
	Node      string
}

// Manager is the simulated scheduler + kubelet pool.
type Manager struct {
	Cluster string

	mu     sync.Mutex
	now    time.Time
	nodes  []*hw.Node
	free   map[string]int
	nextID int
	pods   map[string]*Pod
	gone   []*Pod
}

// NewManager creates a pool over worker nodes.
func NewManager(cluster string, start time.Time, nodes ...*hw.Node) *Manager {
	m := &Manager{
		Cluster: cluster, now: start, nodes: nodes,
		free: map[string]int{}, pods: map[string]*Pod{},
	}
	for _, n := range nodes {
		m.free[n.Spec.Name] = n.Spec.TotalCPUs()
	}
	return m
}

func cgroupPath(uid string) string {
	return fmt.Sprintf("/sys/fs/cgroup/kubepods.slice/kubepods-pod%s.slice", uid)
}

// Run schedules a pod on the first node with capacity.
func (m *Manager) Run(spec PodSpec) (*Pod, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if spec.CPURequest <= 0 {
		return nil, fmt.Errorf("k8ssim: pod must request CPU")
	}
	for _, n := range m.nodes {
		if m.free[n.Spec.Name] < spec.CPURequest {
			continue
		}
		m.nextID++
		uid := fmt.Sprintf("%08x", m.nextID)
		p := &Pod{
			UID: uid, Spec: spec, State: model.UnitRunning,
			CreatedAt: m.now, StartedAt: m.now, Node: n.Spec.Name,
		}
		err := n.AddWorkload(&hw.Workload{
			ID:         "pod-" + uid,
			CgroupPath: cgroupPath(uid),
			CPUs:       spec.CPURequest,
			MemLimit:   spec.MemBytes,
			CPUUtil:    spec.CPUUtil,
			MemUtil:    spec.MemUtil,
		})
		if err != nil {
			return nil, err
		}
		n.FlushFiles()
		m.free[n.Spec.Name] -= spec.CPURequest
		m.pods[uid] = p
		return p, nil
	}
	return nil, fmt.Errorf("k8ssim: no node with %d free cores", spec.CPURequest)
}

// Evict terminates a pod early.
func (m *Manager) Evict(uid string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.finishLocked(uid, model.UnitCancelled)
}

func (m *Manager) finishLocked(uid string, state model.UnitState) error {
	p, ok := m.pods[uid]
	if !ok {
		return fmt.Errorf("k8ssim: no pod %s", uid)
	}
	for _, n := range m.nodes {
		if n.Spec.Name == p.Node {
			n.RemoveWorkload("pod-" + uid)
			m.free[n.Spec.Name] += p.Spec.CPURequest
		}
	}
	p.State = state
	p.EndedAt = m.now
	delete(m.pods, uid)
	m.gone = append(m.gone, p)
	return nil
}

// Advance steps the nodes and completes pods whose duration elapsed.
func (m *Manager) Advance(dt time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = m.now.Add(dt)
	for _, n := range m.nodes {
		n.Advance(dt)
	}
	for uid, p := range m.pods {
		if p.Spec.Duration > 0 && m.now.Sub(p.StartedAt) >= p.Spec.Duration {
			m.finishLocked(uid, model.UnitCompleted)
		}
	}
}

// Units converts pods to the unified compute-unit schema.
func (m *Manager) Units(cutoff time.Time) []model.Unit {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []model.Unit
	conv := func(p *Pod) model.Unit {
		u := model.Unit{
			UUID:        model.UnitUUID(m.Cluster, model.ManagerK8s, p.UID),
			ID:          p.UID,
			Cluster:     m.Cluster,
			Manager:     model.ManagerK8s,
			Name:        p.Spec.Name,
			User:        p.Spec.User,
			Project:     p.Spec.Namespace,
			State:       p.State,
			CreatedAt:   p.CreatedAt.UnixMilli(),
			StartedAt:   p.StartedAt.UnixMilli(),
			CPUs:        p.Spec.CPURequest,
			MemoryBytes: p.Spec.MemBytes,
			Nodes:       []string{p.Node},
		}
		end := m.now
		if !p.EndedAt.IsZero() {
			end = p.EndedAt
			u.EndedAt = p.EndedAt.UnixMilli()
		}
		u.ElapsedSec = int64(end.Sub(p.StartedAt).Seconds())
		return u
	}
	for _, p := range m.pods {
		out = append(out, conv(p))
	}
	for _, p := range m.gone {
		if !p.EndedAt.Before(cutoff) {
			out = append(out, conv(p))
		}
	}
	return out
}
