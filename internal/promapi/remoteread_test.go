package promapi

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/labels"
	"repro/internal/promql"
)

func TestRemoteReadRoundTrip(t *testing.T) {
	h := testHandler(t)
	srv := httptest.NewServer(h.Mux())
	defer srv.Close()

	rq := &RemoteQueryable{BaseURL: srv.URL}
	series, err := rq.Select(0, 1<<60, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "reqs_total"))
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if len(series) != 1 {
		t.Fatalf("series = %d", len(series))
	}
	if len(series[0].Samples) != 41 {
		t.Errorf("samples = %d, want 41", len(series[0].Samples))
	}
	if series[0].Labels.Name() != "reqs_total" {
		t.Errorf("labels = %v", series[0].Labels)
	}
	// Time bounds respected.
	series, _ = rq.Select(0, 60_000, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "reqs_total"))
	if len(series[0].Samples) != 5 {
		t.Errorf("bounded samples = %d, want 5", len(series[0].Samples))
	}
}

// The remote queryable must work as a PromQL backend end-to-end.
func TestRemoteQueryableWithEngine(t *testing.T) {
	h := testHandler(t)
	srv := httptest.NewServer(h.Mux())
	defer srv.Close()

	rq := &RemoteQueryable{BaseURL: srv.URL}
	eng := promql.NewEngine()
	v, err := eng.Instant(rq, `rate(reqs_total[2m])`, time.UnixMilli(600_000))
	if err != nil {
		t.Fatalf("Instant over remote: %v", err)
	}
	vec := v.(promql.Vector)
	if len(vec) != 1 || vec[0].V != 10 {
		t.Errorf("remote rate = %+v, want 10", vec)
	}
}

func TestRemoteReadErrors(t *testing.T) {
	h := testHandler(t)
	srv := httptest.NewServer(h.Mux())
	defer srv.Close()

	// GET rejected.
	resp, err := srv.Client().Get(srv.URL + "/api/v1/read")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("GET read = %d", resp.StatusCode)
	}
	// Unreachable server errors cleanly.
	dead := &RemoteQueryable{BaseURL: "http://127.0.0.1:1", Timeout: time.Second}
	if _, err := dead.Select(0, 1, labels.MustMatcher(labels.MatchEqual, "a", "b")); err == nil {
		t.Error("dead server Select succeeded")
	}
}
