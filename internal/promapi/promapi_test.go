package promapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/promql"
	"repro/internal/tsdb"
)

func testHandler(t *testing.T) *Handler {
	t.Helper()
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	ls := labels.FromStrings(labels.MetricName, "up", "instance", "n1")
	for i := int64(0); i <= 40; i++ {
		if err := db.Append(ls, i*15000, 1); err != nil {
			t.Fatal(err)
		}
	}
	counter := labels.FromStrings(labels.MetricName, "reqs_total", "instance", "n1")
	for i := int64(0); i <= 40; i++ {
		db.Append(counter, i*15000, float64(i)*150)
	}
	return &Handler{Query: db, Now: func() time.Time { return time.UnixMilli(600_000) }}
}

func get(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, apiResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var resp apiResponse
	json.Unmarshal(rec.Body.Bytes(), &resp)
	return rec, resp
}

func TestInstantQuery(t *testing.T) {
	h := testHandler(t).Mux()
	rec, resp := get(t, h, "/api/v1/query?query=up")
	if rec.Code != 200 || resp.Status != "success" {
		t.Fatalf("status = %d, %s", rec.Code, resp.Error)
	}
	if resp.Data.ResultType != "vector" {
		t.Errorf("resultType = %s", resp.Data.ResultType)
	}
	result := resp.Data.Result.([]any)
	if len(result) != 1 {
		t.Fatalf("result = %v", result)
	}
	entry := result[0].(map[string]any)
	metric := entry["metric"].(map[string]any)
	if metric["instance"] != "n1" || metric["__name__"] != "up" {
		t.Errorf("metric = %v", metric)
	}
	val := entry["value"].([]any)
	if val[1] != "1" {
		t.Errorf("value = %v", val)
	}
}

func TestInstantQueryWithExplicitTime(t *testing.T) {
	h := testHandler(t).Mux()
	_, resp := get(t, h, "/api/v1/query?query=reqs_total&time=300")
	result := resp.Data.Result.([]any)
	val := result[0].(map[string]any)["value"].([]any)
	if val[1] != "3000" { // i=20 → 3000
		t.Errorf("value at t=300 = %v", val)
	}
}

func TestScalarQuery(t *testing.T) {
	h := testHandler(t).Mux()
	_, resp := get(t, h, "/api/v1/query?query=1%2B2")
	if resp.Data.ResultType != "scalar" {
		t.Fatalf("resultType = %s", resp.Data.ResultType)
	}
	val := resp.Data.Result.([]any)
	if val[1] != "3" {
		t.Errorf("scalar = %v", val)
	}
}

func TestQueryRange(t *testing.T) {
	h := testHandler(t).Mux()
	rec, resp := get(t, h, "/api/v1/query_range?query=up&start=0&end=600&step=60")
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, resp.Error)
	}
	if resp.Data.ResultType != "matrix" {
		t.Errorf("resultType = %s", resp.Data.ResultType)
	}
	series := resp.Data.Result.([]any)
	if len(series) != 1 {
		t.Fatalf("series = %d", len(series))
	}
	values := series[0].(map[string]any)["values"].([]any)
	if len(values) != 11 {
		t.Errorf("steps = %d, want 11", len(values))
	}
}

func TestErrors(t *testing.T) {
	h := testHandler(t).Mux()
	cases := []struct {
		path string
		code int
	}{
		{"/api/v1/query", 400},
		{"/api/v1/query?query=sum(", 422},
		{"/api/v1/query?query=up&time=bogus", 400},
		{"/api/v1/query_range?query=up", 400},
		{"/api/v1/query_range?query=up&start=0&end=600&step=bogus", 400},
		{"/api/v1/query_range?query=up&start=0&end=600", 400},
	}
	for _, c := range cases {
		rec, resp := get(t, h, c.path)
		if rec.Code != c.code {
			t.Errorf("%s = %d, want %d (%s)", c.path, rec.Code, c.code, resp.Error)
		}
		if resp.Status != "error" {
			t.Errorf("%s: status = %q", c.path, resp.Status)
		}
	}
}

func TestHealthy(t *testing.T) {
	h := testHandler(t).Mux()
	rec, _ := get(t, h, "/-/healthy")
	if rec.Code != 200 {
		t.Errorf("healthy = %d", rec.Code)
	}
}

func TestParseHelpers(t *testing.T) {
	if _, err := parseTime("2026-01-01T00:00:00Z"); err != nil {
		t.Errorf("RFC3339 time rejected: %v", err)
	}
	if _, err := parseTime(""); err == nil {
		t.Error("empty time accepted")
	}
	if d, err := parseStep("1m"); err != nil || d != time.Minute {
		t.Errorf("duration step = %v, %v", d, err)
	}
	if d, err := parseStep("30"); err != nil || d != 30*time.Second {
		t.Errorf("numeric step = %v, %v", d, err)
	}
}

func TestLabelsEndpoints(t *testing.T) {
	h := testHandler(t).Mux()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/labels", nil))
	var resp struct {
		Status string   `json:"status"`
		Data   []string `json:"data"`
	}
	json.Unmarshal(rec.Body.Bytes(), &resp)
	if rec.Code != 200 || resp.Status != "success" {
		t.Fatalf("labels = %d %q", rec.Code, resp.Status)
	}
	want := []string{labels.MetricName, "instance"}
	if len(resp.Data) != 2 || resp.Data[0] != want[0] || resp.Data[1] != want[1] {
		t.Errorf("labels = %v, want %v", resp.Data, want)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/label/__name__/values", nil))
	resp.Data = nil
	json.Unmarshal(rec.Body.Bytes(), &resp)
	if rec.Code != 200 || len(resp.Data) != 2 {
		t.Fatalf("label values = %d %v", rec.Code, resp.Data)
	}
	if resp.Data[0] != "reqs_total" || resp.Data[1] != "up" {
		t.Errorf("values = %v", resp.Data)
	}

	// Absent label yields an empty (non-null) list.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/label/nope/values", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"data":[]`) {
		t.Errorf("absent label = %d %s", rec.Code, rec.Body.String())
	}

	// Malformed values path.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/label/x/nope", nil))
	if rec.Code != 404 {
		t.Errorf("malformed path = %d", rec.Code)
	}
}

// queryableOnly hides tsdb.DB's label methods to exercise the fallback.
type queryableOnly struct{ q promql.Queryable }

func (q queryableOnly) Select(mint, maxt int64, ms ...*labels.Matcher) ([]model.Series, error) {
	return q.q.Select(mint, maxt, ms...)
}

func TestLabelsUnsupportedBackend(t *testing.T) {
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	h := (&Handler{Query: queryableOnly{db}}).Mux()
	for _, path := range []string{"/api/v1/labels", "/api/v1/label/x/values"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != 404 {
			t.Errorf("%s = %d, want 404", path, rec.Code)
		}
	}
}
