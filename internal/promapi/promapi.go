// Package promapi serves the Prometheus HTTP query API
// (/api/v1/query, /api/v1/query_range, /-/healthy) over any
// promql.Queryable — the hot TSDB, the Thanos fan-in querier, or anything
// else. Grafana's datasource and the CEEMS load balancer both speak this
// protocol, so the LB can sit in front of this handler unchanged.
package promapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/model"
	"repro/internal/promql"
	"repro/internal/querycache"
	"repro/internal/remotewrite"
	"repro/internal/telemetry"
)

// TraceHeader is the opt-in per-query tracing header: a request that sends
// it (any value) gets the same header back on the response, carrying the
// evaluation's stage timings ("parse=0.000012 eval=0.000345 ...").
const TraceHeader = "X-Query-Trace"

// Handler serves the query API.
type Handler struct {
	Engine *promql.Engine
	Query  promql.Queryable
	// Now supplies the default evaluation time; nil means time.Now.
	Now func() time.Time
	// Timeout bounds each query's evaluation; 0 disables. Queries that
	// exceed it return 503; evaluation failures — including engine
	// guardrail violations (step-count, sample budget) — return 422.
	Timeout time.Duration
	// Cache, when set, serves /api/v1/query and /api/v1/query_range through
	// the query-result cache: exact repeats answer without evaluation and
	// overlapping range windows re-evaluate only the uncovered steps. Build
	// it with querycache.New over the same head this handler queries (its
	// Lookback and MaxSteps must match the engine's). Responses carry an X-Querycache
	// header (hit/miss/splice/bypass) and /api/v1/status/querycache reports
	// its counters.
	Cache *querycache.Cache
	// Ingest, when set, serves POST /api/v1/write: the streaming
	// remote-write receiver (framed expofmt batches, explicit 429
	// backpressure — see internal/remotewrite). Its counters surface via
	// /api/v1/status/ingest whether or not it is enabled.
	Ingest *remotewrite.Receiver
	// Logf receives handler-side I/O failures that can no longer change
	// the response (e.g. a mid-stream encode error on /api/v1/read); nil
	// uses the standard logger.
	Logf func(format string, args ...any)
	// Metrics, when set, serves the registry's exposition at GET /metrics —
	// the self-telemetry endpoint a scrape loop (our own or a peer's) can
	// ingest like any exporter.
	Metrics *telemetry.Registry
	// Queries, when set, tracks every in-flight query plus a ring of slow
	// ones (see telemetry.QueryLog), served at /api/v1/status/queries.
	// Queries also get per-stage traces; sending the X-Query-Trace request
	// header returns the stage timings on the response whether or not a
	// QueryLog is configured.
	Queries *telemetry.QueryLog
}

// LabelStore is the optional metadata side of a Queryable. *tsdb.DB
// implements it (fanning the lookup across head shards); when Query does,
// the handler additionally serves /api/v1/labels and
// /api/v1/label/<name>/values, the endpoints Grafana uses to populate
// dashboard variable dropdowns.
type LabelStore interface {
	LabelNames() []string
	LabelValues(name string) []string
}

// Mux returns the route tree.
func (h *Handler) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/query", h.handleQuery)
	mux.HandleFunc("/api/v1/query_range", h.handleQueryRange)
	mux.HandleFunc("/api/v1/labels", h.handleLabels)
	mux.HandleFunc("/api/v1/label/", h.handleLabelValues)
	mux.HandleFunc("/api/v1/read", h.handleRead)
	if h.Ingest != nil {
		mux.Handle("/api/v1/write", h.Ingest)
	}
	mux.HandleFunc("/api/v1/status/ingest", h.handleIngestStatus)
	mux.HandleFunc("/api/v1/status/querycache", h.handleCacheStatus)
	mux.HandleFunc("/api/v1/status/queries", h.handleQueriesStatus)
	if h.Metrics != nil {
		// Exact path only: the bare pattern (no trailing slash) never
		// matches /foo/metrics.
		mux.Handle("/metrics", h.Metrics)
	}
	mux.HandleFunc("/-/healthy", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok"))
	})
	return mux
}

// apiResponse is the Prometheus envelope.
type apiResponse struct {
	Status string  `json:"status"`
	Data   apiData `json:"data,omitempty"`
	Error  string  `json:"error,omitempty"`
}

type apiData struct {
	ResultType string `json:"resultType"`
	Result     any    `json:"result"`
}

// vectorSample mirrors Prometheus's instant-vector JSON shape.
type vectorSample struct {
	Metric map[string]string `json:"metric"`
	Value  [2]any            `json:"value"` // [unix_seconds, "value"]
}

// matrixSeries mirrors the range-vector shape.
type matrixSeries struct {
	Metric map[string]string `json:"metric"`
	Values [][2]any          `json:"values"`
}

func (h *Handler) engine() *promql.Engine {
	if h.Engine != nil {
		return h.Engine
	}
	return promql.NewEngine()
}

func (h *Handler) now() time.Time {
	if h.Now != nil {
		return h.Now()
	}
	return time.Now()
}

// queryCtx derives the evaluation context for one request, applying the
// handler's query timeout when configured.
func (h *Handler) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if h.Timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), h.Timeout)
}

// beginQuery registers the query with the handler's QueryLog (when
// configured) and attaches a stage trace to the evaluation context — the
// log's own trace, or a standalone one when the client opted in via the
// X-Query-Trace header without a log running.
func (h *Handler) beginQuery(ctx context.Context, r *http.Request, kind, query string) (context.Context, *telemetry.RunningQuery, *telemetry.QueryTrace) {
	rq := h.Queries.Begin(kind, query)
	trace := rq.Trace()
	if trace == nil && r.Header.Get(TraceHeader) != "" {
		trace = &telemetry.QueryTrace{}
	}
	return telemetry.ContextWithTrace(ctx, trace), rq, trace
}

// finishQuery completes the log entry and answers the trace header opt-in.
// Must run before the response body is written.
func finishQuery(w http.ResponseWriter, r *http.Request, rq *telemetry.RunningQuery, trace *telemetry.QueryTrace, err error) {
	rq.End(err)
	if trace != nil && r.Header.Get(TraceHeader) != "" {
		w.Header().Set(TraceHeader, trace.HeaderValue())
	}
}

// writeQueryErr maps evaluation failures onto Prometheus-style statuses:
// deadline/cancellation is 503, matching Prometheus's timeout semantics;
// every other evaluation failure — parse/type errors and engine guardrail
// violations (promql.LimitError: too many steps, sample budget) alike —
// keeps this API's long-standing 422 convention.
func writeQueryErr(w http.ResponseWriter, err error) {
	code := http.StatusUnprocessableEntity
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		code = http.StatusServiceUnavailable
	}
	writeErr(w, code, err.Error())
}

func (h *Handler) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("query")
	if q == "" {
		writeErr(w, http.StatusBadRequest, "query parameter required")
		return
	}
	ts := h.now()
	if v := r.URL.Query().Get("time"); v != "" {
		t, err := parseTime(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		ts = t
	}
	ctx, cancel := h.queryCtx(r)
	defer cancel()
	ctx, rq, trace := h.beginQuery(ctx, r, "instant", q)
	var (
		val promql.Value
		err error
	)
	if h.Cache != nil {
		var outcome querycache.Outcome
		val, outcome, err = h.Cache.InstantQuery(ctx, q, ts, func(ctx context.Context) (promql.Value, error) {
			return h.engine().InstantCtx(ctx, h.Query, q, ts)
		})
		w.Header().Set("X-Querycache", string(outcome))
	} else {
		val, err = h.engine().InstantCtx(ctx, h.Query, q, ts)
	}
	finishQuery(w, r, rq, trace, err)
	if err != nil {
		writeQueryErr(w, err)
		return
	}
	switch tv := val.(type) {
	case promql.Vector:
		out := make([]vectorSample, len(tv))
		for i, s := range tv {
			out[i] = vectorSample{
				Metric: s.Labels.Map(),
				Value:  [2]any{float64(s.T) / 1000, formatVal(s.V)},
			}
		}
		writeOK(w, "vector", out)
	case promql.Scalar:
		writeOK(w, "scalar", [2]any{float64(tv.T) / 1000, formatVal(tv.V)})
	default:
		writeErr(w, http.StatusUnprocessableEntity, "unsupported result type")
	}
}

func (h *Handler) handleQueryRange(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query()
	q := qs.Get("query")
	if q == "" {
		writeErr(w, http.StatusBadRequest, "query parameter required")
		return
	}
	start, err1 := parseTime(qs.Get("start"))
	end, err2 := parseTime(qs.Get("end"))
	step, err3 := parseStep(qs.Get("step"))
	for _, err := range []error{err1, err2, err3} {
		if err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	ctx, cancel := h.queryCtx(r)
	defer cancel()
	ctx, rq, trace := h.beginQuery(ctx, r, "range", q)
	var (
		m    promql.Matrix
		merr error
	)
	if h.Cache != nil {
		var outcome querycache.Outcome
		m, outcome, merr = h.Cache.RangeQuery(ctx, q, start, end, step,
			func(ctx context.Context, s, e time.Time, st time.Duration) (promql.Matrix, error) {
				return h.engine().RangeCtx(ctx, h.Query, q, s, e, st)
			})
		w.Header().Set("X-Querycache", string(outcome))
	} else {
		m, merr = h.engine().RangeCtx(ctx, h.Query, q, start, end, step)
	}
	finishQuery(w, r, rq, trace, merr)
	if merr != nil {
		writeQueryErr(w, merr)
		return
	}
	out := make([]matrixSeries, len(m))
	for i, sr := range m {
		vals := make([][2]any, len(sr.Samples))
		for j, smp := range sr.Samples {
			vals[j] = [2]any{float64(smp.T) / 1000, formatVal(smp.V)}
		}
		out[i] = matrixSeries{Metric: sr.Labels.Map(), Values: vals}
	}
	writeOK(w, "matrix", out)
}

// handleCacheStatus serves /api/v1/status/querycache: the result cache's
// hit/miss/splice/evict counters and occupancy, or enabled:false when the
// handler runs uncached.
func (h *Handler) handleCacheStatus(w http.ResponseWriter, _ *http.Request) {
	type status struct {
		Enabled bool              `json:"enabled"`
		Stats   *querycache.Stats `json:"stats,omitempty"`
	}
	out := status{}
	if h.Cache != nil {
		st := h.Cache.Stats()
		out = status{Enabled: true, Stats: &st}
	}
	writeOK(w, "querycache", out)
}

// handleIngestStatus serves /api/v1/status/ingest: the remote-write
// receiver's counters and trailing samples/s, or enabled:false when push
// ingest is off.
func (h *Handler) handleIngestStatus(w http.ResponseWriter, _ *http.Request) {
	type status struct {
		Enabled bool                     `json:"enabled"`
		Stats   *remotewrite.IngestStats `json:"stats,omitempty"`
	}
	out := status{}
	if h.Ingest != nil {
		st := h.Ingest.Stats()
		out = status{Enabled: true, Stats: &st}
	}
	writeOK(w, "ingest", out)
}

// handleQueriesStatus serves /api/v1/status/queries: the in-flight queries
// and the slow-query ring, or enabled:false when no QueryLog is configured.
func (h *Handler) handleQueriesStatus(w http.ResponseWriter, _ *http.Request) {
	type status struct {
		Enabled bool                      `json:"enabled"`
		Log     *telemetry.QueryLogStatus `json:"log,omitempty"`
	}
	out := status{}
	if h.Queries != nil {
		st := h.Queries.Status()
		out = status{Enabled: true, Log: &st}
	}
	writeOK(w, "queries", out)
}

// handleLabels serves /api/v1/labels when the backing store supports label
// metadata.
func (h *Handler) handleLabels(w http.ResponseWriter, _ *http.Request) {
	ls, ok := h.Query.(LabelStore)
	if !ok {
		writeErr(w, http.StatusNotFound, "label metadata not supported by this backend")
		return
	}
	writeList(w, ls.LabelNames())
}

// handleLabelValues serves /api/v1/label/<name>/values.
func (h *Handler) handleLabelValues(w http.ResponseWriter, r *http.Request) {
	ls, ok := h.Query.(LabelStore)
	if !ok {
		writeErr(w, http.StatusNotFound, "label metadata not supported by this backend")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/label/")
	name, suffix, found := strings.Cut(rest, "/")
	if !found || suffix != "values" || name == "" {
		writeErr(w, http.StatusNotFound, "expected /api/v1/label/<name>/values")
		return
	}
	writeList(w, ls.LabelValues(name))
}

// writeList emits the Prometheus label-list envelope ({"status":"success",
// "data":[...]}), which has no resultType wrapper.
func writeList(w http.ResponseWriter, list []string) {
	if list == nil {
		list = []string{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Status string   `json:"status"`
		Data   []string `json:"data"`
	}{Status: "success", Data: list})
}

func parseTime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, fmt.Errorf("promapi: missing time parameter")
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return model.MillisToTime(int64(f * 1000)), nil
	}
	t, err := time.Parse(time.RFC3339, s)
	if err != nil {
		return time.Time{}, fmt.Errorf("promapi: bad time %q", s)
	}
	return t, nil
}

func parseStep(s string) (time.Duration, error) {
	if s == "" {
		return 0, fmt.Errorf("promapi: missing step parameter")
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return time.Duration(f * float64(time.Second)), nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("promapi: bad step %q", s)
	}
	return d, nil
}

func formatVal(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func writeOK(w http.ResponseWriter, typ string, result any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(apiResponse{
		Status: "success",
		Data:   apiData{ResultType: typ, Result: result},
	})
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(apiResponse{Status: "error", Error: msg})
}
