package promapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/expofmt"
	"repro/internal/labels"
	"repro/internal/remotewrite"
	"repro/internal/scrape"
	"repro/internal/tsdb"
)

func ingestBody(t *testing.T) []byte {
	t.Helper()
	fam := &expofmt.Family{Name: "pushed_metric", Type: expofmt.TypeGauge}
	for i := 0; i < 6; i++ {
		fam.Metrics = append(fam.Metrics, expofmt.Metric{
			Labels: labels.FromStrings(labels.MetricName, "pushed_metric", "instance", "agent1"),
			Value:  float64(i), TS: int64(1000 * (i + 1)),
		})
	}
	var buf bytes.Buffer
	enc := remotewrite.NewEncoder(&buf, true)
	if err := enc.WriteBatch([]*expofmt.Family{fam}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRemoteWriteViaMux wires the receiver into the API mux the way the
// sims do and pushes a stream through POST /api/v1/write; the samples must
// be queryable afterwards.
func TestRemoteWriteViaMux(t *testing.T) {
	db := tsdb.MustOpen(tsdb.Options{OutOfOrderWindow: 60_000})
	h := &Handler{
		Query:  db,
		Ingest: &remotewrite.Receiver{NewBatch: func() scrape.Batch { return db.Appender() }},
	}
	mux := h.Mux()

	req := httptest.NewRequest(http.MethodPost, "/api/v1/write", bytes.NewReader(ingestBody(t)))
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("push: %d %s", rec.Code, rec.Body)
	}

	m := labels.MustMatcher(labels.MatchEqual, labels.MetricName, "pushed_metric")
	series, err := db.Select(0, 1<<60, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || len(series[0].Samples) != 6 {
		t.Fatalf("pushed series not queryable: %+v", series)
	}
}

// TestRemoteWriteMuxDisabled: without a receiver the write endpoint does
// not exist.
func TestRemoteWriteMuxDisabled(t *testing.T) {
	h := testHandler(t)
	req := httptest.NewRequest(http.MethodPost, "/api/v1/write", strings.NewReader("x"))
	rec := httptest.NewRecorder()
	h.Mux().ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("write with ingest off: %d, want 404", rec.Code)
	}
}

// TestIngestStatusEndpoint checks both shapes of /api/v1/status/ingest.
func TestIngestStatusEndpoint(t *testing.T) {
	type status struct {
		Enabled bool                     `json:"enabled"`
		Stats   *remotewrite.IngestStats `json:"stats"`
	}
	// The endpoint answers in the Prometheus envelope with
	// resultType "ingest"; unwrap to the status payload.
	decode := func(t *testing.T, body []byte) status {
		t.Helper()
		var env struct {
			Status string `json:"status"`
			Data   struct {
				ResultType string `json:"resultType"`
				Result     status `json:"result"`
			} `json:"data"`
		}
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatalf("envelope: %v in %s", err, body)
		}
		if env.Status != "success" || env.Data.ResultType != "ingest" {
			t.Fatalf("envelope = %s", body)
		}
		return env.Data.Result
	}

	// Disabled: enabled=false, no stats.
	rec := httptest.NewRecorder()
	testHandler(t).Mux().ServeHTTP(rec,
		httptest.NewRequest(http.MethodGet, "/api/v1/status/ingest", nil))
	off := decode(t, rec.Body.Bytes())
	if off.Enabled || off.Stats != nil {
		t.Fatalf("disabled status = %+v", off)
	}

	// Enabled: counters reflect traffic.
	db := tsdb.MustOpen(tsdb.Options{})
	h := &Handler{
		Query:  db,
		Ingest: &remotewrite.Receiver{NewBatch: func() scrape.Batch { return db.Appender() }},
	}
	mux := h.Mux()
	push := httptest.NewRecorder()
	mux.ServeHTTP(push, httptest.NewRequest(http.MethodPost, "/api/v1/write", bytes.NewReader(ingestBody(t))))
	if push.Code != http.StatusOK {
		t.Fatalf("push: %d %s", push.Code, push.Body)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/status/ingest", nil))
	on := decode(t, rec.Body.Bytes())
	if !on.Enabled || on.Stats == nil {
		t.Fatalf("enabled status = %s", rec.Body)
	}
	if on.Stats.Requests != 1 || on.Stats.Frames != 1 || on.Stats.SamplesAppended != 6 {
		t.Fatalf("stats = %+v", on.Stats)
	}
}

// TestRemoteReadBackendErrorStatus is the proxy-502 regression: a non-JSON
// error body must surface as the status code plus a snippet, never as a
// bare JSON decode error.
func TestRemoteReadBackendErrorStatus(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		w.WriteHeader(http.StatusBadGateway)
		w.Write([]byte("<html><body><h1>502 Bad Gateway</h1></body></html>"))
	}))
	defer backend.Close()

	rq := &RemoteQueryable{BaseURL: backend.URL}
	_, err := rq.Select(0, 1000, labels.MustMatcher(labels.MatchEqual, "a", "b"))
	if err == nil {
		t.Fatal("Select against a 502 backend succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, "502") {
		t.Fatalf("error does not carry the status: %v", err)
	}
	if !strings.Contains(msg, "Bad Gateway") {
		t.Fatalf("error does not carry a body snippet: %v", err)
	}
	if strings.Contains(msg, "invalid character") {
		t.Fatalf("error leaked a JSON decode failure: %v", err)
	}
}

// TestRemoteReadBodyCap: a response past MaxBodyBytes fails instead of
// buffering without bound.
func TestRemoteReadBodyCap(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"series":[{"labels":{"__name__":"big"},"samples":[`))
		for i := 0; i < 1000; i++ {
			if i > 0 {
				w.Write([]byte(","))
			}
			w.Write([]byte(`[1000,1.5]`))
		}
		w.Write([]byte(`]}]}`))
	}))
	defer backend.Close()

	rq := &RemoteQueryable{BaseURL: backend.URL, MaxBodyBytes: 256}
	_, err := rq.Select(0, 1000, labels.MustMatcher(labels.MatchEqual, "a", "b"))
	if err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("over-cap response: got %v, want body-cap error", err)
	}
	// The same response under the default cap parses fine.
	rq.MaxBodyBytes = 0
	series, err := rq.Select(0, 1000, labels.MustMatcher(labels.MatchEqual, "a", "b"))
	if err != nil || len(series) != 1 || len(series[0].Samples) != 1000 {
		t.Fatalf("uncapped read: %v (series %d)", err, len(series))
	}
}

// TestRemoteReadSampleLimit: a hint-aware store enforces the engine's
// MaxSamples budget on remote reads, and the handler maps the violation to
// 422.
func TestRemoteReadSampleLimit(t *testing.T) {
	h := testHandler(t) // reqs_total + up: 41 samples each
	eng := h.engine()
	eng.MaxSamples = 10
	h.Engine = eng

	body, _ := json.Marshal(readRequest{
		MinTime: 0, MaxTime: 1 << 60,
		Matchers: []readMatcher{{Type: "=", Name: labels.MetricName, Value: "reqs_total"}},
	})
	rec := httptest.NewRecorder()
	h.Mux().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/read", bytes.NewReader(body)))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("over-budget read: %d %s, want 422", rec.Code, rec.Body)
	}
	var resp readResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Error, "sample limit") {
		t.Fatalf("422 error = %q", resp.Error)
	}

	// Within budget the same read succeeds.
	eng.MaxSamples = 1 << 20
	rec = httptest.NewRecorder()
	h.Mux().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/read", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("in-budget read: %d %s", rec.Code, rec.Body)
	}
}

// brokenWriter fails every Write after the first n bytes, standing in for a
// client that hung up mid-response.
type brokenWriter struct {
	hdr     http.Header
	n       int
	written int
}

func (b *brokenWriter) Header() http.Header { return b.hdr }
func (b *brokenWriter) WriteHeader(int)     {}
func (b *brokenWriter) Write(p []byte) (int, error) {
	if b.written+len(p) > b.n {
		return 0, errFakeConnReset
	}
	b.written += len(p)
	return len(p), nil
}

var errFakeConnReset = &net_OpError{}

type net_OpError struct{}

func (*net_OpError) Error() string { return "connection reset by test" }

// TestRemoteReadEncodeErrorLogged: a mid-stream write failure must be
// logged through Logf and abort the response, not be swallowed.
func TestRemoteReadEncodeErrorLogged(t *testing.T) {
	h := testHandler(t)
	var logged []string
	h.Logf = func(format string, args ...any) {
		logged = append(logged, strings.TrimSpace(format))
	}
	body, _ := json.Marshal(readRequest{
		MinTime: 0, MaxTime: 1 << 60,
		Matchers: []readMatcher{{Type: "=~", Name: labels.MetricName, Value: ".+"}},
	})
	req := httptest.NewRequest(http.MethodPost, "/api/v1/read", bytes.NewReader(body))
	w := &brokenWriter{hdr: http.Header{}, n: 32}
	h.handleRead(w, req)
	if len(logged) == 0 {
		t.Fatal("mid-stream write failure was not logged")
	}
	if !strings.Contains(logged[0], "remote read") {
		t.Fatalf("log line %q does not identify the remote-read path", logged[0])
	}
}
