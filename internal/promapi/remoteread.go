package promapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/labels"
	"repro/internal/model"
)

// Remote read: a JSON equivalent of Prometheus's remote-read protocol so a
// standalone CEEMS API server can use a remote TSDB as its promql
// Queryable. POST /api/v1/read with a readRequest returns full series.

// readRequest is the wire format of a remote Select.
type readRequest struct {
	MinTime  int64         `json:"min_time"`
	MaxTime  int64         `json:"max_time"`
	Matchers []readMatcher `json:"matchers"`
}

type readMatcher struct {
	Type  string `json:"type"` // "=", "!=", "=~", "!~"
	Name  string `json:"name"`
	Value string `json:"value"`
}

type readResponse struct {
	Series []readSeries `json:"series"`
	Error  string       `json:"error,omitempty"`
}

type readSeries struct {
	Labels  map[string]string `json:"labels"`
	Samples [][2]float64      `json:"samples"` // [unix_ms, value]
}

// handleRead serves POST /api/v1/read.
func (h *Handler) handleRead(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req readRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeReadErr(w, http.StatusBadRequest, err.Error())
		return
	}
	ms := make([]*labels.Matcher, 0, len(req.Matchers))
	for _, rm := range req.Matchers {
		var t labels.MatchType
		switch rm.Type {
		case "=":
			t = labels.MatchEqual
		case "!=":
			t = labels.MatchNotEqual
		case "=~":
			t = labels.MatchRegexp
		case "!~":
			t = labels.MatchNotRegexp
		default:
			writeReadErr(w, http.StatusBadRequest, fmt.Sprintf("bad matcher type %q", rm.Type))
			return
		}
		m, err := labels.NewMatcher(t, rm.Name, rm.Value)
		if err != nil {
			writeReadErr(w, http.StatusBadRequest, err.Error())
			return
		}
		ms = append(ms, m)
	}
	series, err := h.Query.Select(req.MinTime, req.MaxTime, ms...)
	if err != nil {
		writeReadErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := readResponse{Series: make([]readSeries, len(series))}
	for i, sr := range series {
		out := readSeries{Labels: sr.Labels.Map(), Samples: make([][2]float64, len(sr.Samples))}
		for j, s := range sr.Samples {
			out.Samples[j] = [2]float64{float64(s.T), s.V}
		}
		resp.Series[i] = out
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func writeReadErr(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(readResponse{Error: msg})
}

// RemoteQueryable is a promql.Queryable backed by a remote /api/v1/read
// endpoint; the standalone CEEMS API server uses it to aggregate against a
// separately-deployed TSDB.
type RemoteQueryable struct {
	BaseURL string
	Client  *http.Client
	Timeout time.Duration
}

// Select implements promql.Queryable over HTTP.
func (rq *RemoteQueryable) Select(mint, maxt int64, ms ...*labels.Matcher) ([]model.Series, error) {
	req := readRequest{MinTime: mint, MaxTime: maxt}
	for _, m := range ms {
		req.Matchers = append(req.Matchers, readMatcher{
			Type: m.Type.String(), Name: m.Name, Value: m.Value,
		})
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	timeout := rq.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, rq.BaseURL+"/api/v1/read", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	client := rq.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("promapi: remote read: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	var rr readResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		return nil, fmt.Errorf("promapi: remote read decode: %w", err)
	}
	if rr.Error != "" {
		return nil, fmt.Errorf("promapi: remote read: %s", rr.Error)
	}
	out := make([]model.Series, len(rr.Series))
	for i, sr := range rr.Series {
		s := model.Series{Labels: labels.FromMap(sr.Labels)}
		for _, p := range sr.Samples {
			s.Samples = append(s.Samples, model.Sample{T: int64(p[0]), V: p[1]})
		}
		out[i] = s
	}
	return out, nil
}
