package promapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/promql"
)

// Remote read: a JSON equivalent of Prometheus's remote-read protocol so a
// standalone CEEMS API server can use a remote TSDB as its promql
// Queryable. POST /api/v1/read with a readRequest returns full series.

// readRequest is the wire format of a remote Select.
type readRequest struct {
	MinTime  int64         `json:"min_time"`
	MaxTime  int64         `json:"max_time"`
	Matchers []readMatcher `json:"matchers"`
}

type readMatcher struct {
	Type  string `json:"type"` // "=", "!=", "=~", "!~"
	Name  string `json:"name"`
	Value string `json:"value"`
}

type readResponse struct {
	Series []readSeries `json:"series"`
	Error  string       `json:"error,omitempty"`
}

type readSeries struct {
	Labels  map[string]string `json:"labels"`
	Samples [][2]float64      `json:"samples"` // [unix_ms, value]
}

// handleRead serves POST /api/v1/read. The Select is budgeted like the
// query paths: when the backing store is hint-aware, the engine's
// MaxSamples caps how much one read request may materialize server-side,
// and blowing the budget returns 422. The response streams series by
// series — the handler never holds the full result set encoded in memory —
// and when Timeout is set it doubles as the response write deadline, so a
// stalled client cannot pin the connection forever.
func (h *Handler) handleRead(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req readRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeReadErr(w, http.StatusBadRequest, err.Error())
		return
	}
	ms := make([]*labels.Matcher, 0, len(req.Matchers))
	for _, rm := range req.Matchers {
		var t labels.MatchType
		switch rm.Type {
		case "=":
			t = labels.MatchEqual
		case "!=":
			t = labels.MatchNotEqual
		case "=~":
			t = labels.MatchRegexp
		case "!~":
			t = labels.MatchNotRegexp
		default:
			writeReadErr(w, http.StatusBadRequest, fmt.Sprintf("bad matcher type %q", rm.Type))
			return
		}
		m, err := labels.NewMatcher(t, rm.Name, rm.Value)
		if err != nil {
			writeReadErr(w, http.StatusBadRequest, err.Error())
			return
		}
		ms = append(ms, m)
	}
	var (
		series []model.Series
		err    error
	)
	if hq, ok := h.Query.(promql.HintedQueryable); ok {
		hints := model.SelectHints{
			Start:       req.MinTime,
			End:         req.MaxTime,
			SampleLimit: int64(h.engine().MaxSamples),
		}
		series, err = hq.SelectWithHints(hints, ms...)
	} else {
		series, err = h.Query.Select(req.MinTime, req.MaxTime, ms...)
	}
	if err != nil {
		if errors.Is(err, model.ErrSampleLimit) {
			writeReadErr(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		writeReadErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	if h.Timeout > 0 {
		// Best effort: recorders and exotic ResponseWriters don't support
		// deadlines; real servers do.
		_ = http.NewResponseController(w).SetWriteDeadline(time.Now().Add(h.Timeout))
	}
	// Stream the response: the envelope by hand, one readSeries encode per
	// series. The wire shape stays exactly readResponse, but peak memory is
	// one series, not the whole result set.
	w.Header().Set("Content-Type", "application/json")
	if _, err := io.WriteString(w, `{"series":[`); err != nil {
		h.logf("promapi: remote read: write response: %v", err)
		return
	}
	enc := json.NewEncoder(w)
	for i, sr := range series {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				h.logf("promapi: remote read: write response: %v", err)
				return
			}
		}
		out := readSeries{Labels: sr.Labels.Map(), Samples: make([][2]float64, len(sr.Samples))}
		for j, s := range sr.Samples {
			out.Samples[j] = [2]float64{float64(s.T), s.V}
		}
		if err := enc.Encode(out); err != nil {
			// Mid-stream failure: the status line is gone, all we can do
			// is log and drop the connection (the truncated JSON will fail
			// to parse client-side, which is the correct signal).
			h.logf("promapi: remote read: encode series %d/%d: %v", i+1, len(series), err)
			return
		}
	}
	if _, err := io.WriteString(w, `]}`); err != nil {
		h.logf("promapi: remote read: write response: %v", err)
	}
}

// logf routes handler-side I/O failures to Logf or the standard logger.
func (h *Handler) logf(format string, args ...any) {
	if h.Logf != nil {
		h.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

func writeReadErr(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(readResponse{Error: msg})
}

// DefaultRemoteReadMaxBody caps how much of a remote read response the
// client will buffer when RemoteQueryable.MaxBodyBytes is unset.
const DefaultRemoteReadMaxBody = 256 << 20

// RemoteQueryable is a promql.Queryable backed by a remote /api/v1/read
// endpoint; the standalone CEEMS API server uses it to aggregate against a
// separately-deployed TSDB.
type RemoteQueryable struct {
	BaseURL string
	Client  *http.Client
	Timeout time.Duration
	// MaxBodyBytes caps the response body read; 0 picks
	// DefaultRemoteReadMaxBody. A response past the cap fails rather than
	// exhausting memory.
	MaxBodyBytes int64
}

// Select implements promql.Queryable over HTTP. Non-200 responses fail
// with the status code and a snippet of the body — a proxy's 502 HTML page
// is reported as such instead of surfacing as a JSON decode error — and
// the body read is capped either way.
func (rq *RemoteQueryable) Select(mint, maxt int64, ms ...*labels.Matcher) ([]model.Series, error) {
	req := readRequest{MinTime: mint, MaxTime: maxt}
	for _, m := range ms {
		req.Matchers = append(req.Matchers, readMatcher{
			Type: m.Type.String(), Name: m.Name, Value: m.Value,
		})
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	timeout := rq.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, rq.BaseURL+"/api/v1/read", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	client := rq.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("promapi: remote read: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Error bodies are small (or not ours at all — a proxy error
		// page); read just enough to be diagnostic.
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, fmt.Errorf("promapi: remote read: unexpected status %s: %s",
			resp.Status, bytes.TrimSpace(snippet))
	}
	maxBody := rq.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultRemoteReadMaxBody
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBody+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > maxBody {
		return nil, fmt.Errorf("promapi: remote read: response body exceeds %d-byte cap", maxBody)
	}
	var rr readResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		return nil, fmt.Errorf("promapi: remote read decode: %w", err)
	}
	if rr.Error != "" {
		return nil, fmt.Errorf("promapi: remote read: %s", rr.Error)
	}
	out := make([]model.Series, len(rr.Series))
	for i, sr := range rr.Series {
		s := model.Series{Labels: labels.FromMap(sr.Labels)}
		for _, p := range sr.Samples {
			s.Samples = append(s.Samples, model.Sample{T: int64(p[0]), V: p[1]})
		}
		out[i] = s
	}
	return out, nil
}
