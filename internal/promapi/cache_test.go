package promapi

import (
	"strings"
	"testing"
	"time"

	"repro/internal/labels"
	"repro/internal/promql"
	"repro/internal/querycache"
	"repro/internal/tsdb"
)

// cachedHandler builds a handler pair over one head: h serves through the
// cache (paranoid, so every splice self-verifies), plain serves cold.
func cachedHandler(t *testing.T) (h, plain *Handler, db *tsdb.DB) {
	t.Helper()
	db = tsdb.MustOpen(tsdb.DefaultOptions())
	ls := labels.FromStrings(labels.MetricName, "up", "instance", "n1")
	for i := int64(0); i <= 40; i++ {
		if err := db.Append(ls, i*15000, float64(i%5)); err != nil {
			t.Fatal(err)
		}
	}
	eng := promql.NewEngine()
	now := func() time.Time { return time.UnixMilli(600_000) }
	cache := querycache.New(querycache.Options{
		MaxBytes: 1 << 20, Head: db, Lookback: eng.LookbackDelta, Paranoid: true,
	})
	h = &Handler{Engine: eng, Query: db, Now: now, Cache: cache}
	plain = &Handler{Engine: eng, Query: db, Now: now}
	return h, plain, db
}

func TestRangeQueryThroughCache(t *testing.T) {
	h, plain, db := cachedHandler(t)
	mux, plainMux := h.Mux(), plain.Mux()
	const path = "/api/v1/query_range?query=up&start=100&end=600&step=15"

	rec1, resp1 := get(t, mux, path)
	if rec1.Code != 200 || resp1.Status != "success" {
		t.Fatalf("first = %d %s", rec1.Code, resp1.Error)
	}
	if got := rec1.Header().Get("X-Querycache"); got != "miss" {
		t.Fatalf("first X-Querycache = %q", got)
	}
	rec2, _ := get(t, mux, path)
	if got := rec2.Header().Get("X-Querycache"); got != "hit" {
		t.Fatalf("repeat X-Querycache = %q", got)
	}
	recCold, _ := get(t, plainMux, path)
	if rec2.Body.String() != recCold.Body.String() {
		t.Fatalf("cached response differs from cold:\n%s\n%s", rec2.Body, recCold.Body)
	}

	// The head advances; the slid window splices and still matches cold.
	for i := int64(41); i <= 45; i++ {
		db.Append(labels.FromStrings(labels.MetricName, "up", "instance", "n1"), i*15000, float64(i%5))
	}
	const slid = "/api/v1/query_range?query=up&start=175&end=675&step=15"
	rec3, _ := get(t, mux, slid)
	if got := rec3.Header().Get("X-Querycache"); got != "splice" {
		t.Fatalf("slid window X-Querycache = %q, want splice", got)
	}
	recCold3, _ := get(t, plainMux, slid)
	if rec3.Body.String() != recCold3.Body.String() {
		t.Fatalf("spliced response differs from cold:\n%s\n%s", rec3.Body, recCold3.Body)
	}
}

func TestInstantQueryThroughCache(t *testing.T) {
	h, plain, _ := cachedHandler(t)
	mux, plainMux := h.Mux(), plain.Mux()
	const path = "/api/v1/query?query=sum(up)&time=300"

	get(t, mux, path)
	rec, _ := get(t, mux, path)
	if got := rec.Header().Get("X-Querycache"); got != "hit" {
		t.Fatalf("repeat X-Querycache = %q", got)
	}
	recCold, _ := get(t, plainMux, path)
	if rec.Body.String() != recCold.Body.String() {
		t.Fatal("cached instant response differs from cold")
	}
}

func TestQuerycacheStatusEndpoint(t *testing.T) {
	h, plain, _ := cachedHandler(t)
	mux := h.Mux()
	get(t, mux, "/api/v1/query_range?query=up&start=100&end=600&step=15")
	get(t, mux, "/api/v1/query_range?query=up&start=100&end=600&step=15")

	rec, resp := get(t, mux, "/api/v1/status/querycache")
	if rec.Code != 200 || resp.Status != "success" {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{`"enabled":true`, `"hits":1`, `"misses":1`} {
		if !strings.Contains(body, want) {
			t.Fatalf("status body missing %q: %s", want, body)
		}
	}
	// Without a cache the endpoint reports disabled rather than 404ing.
	rec2, _ := get(t, plain.Mux(), "/api/v1/status/querycache")
	if rec2.Code != 200 || !strings.Contains(rec2.Body.String(), `"enabled":false`) {
		t.Fatalf("uncached status = %d %s", rec2.Code, rec2.Body)
	}
}
