package promapi

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/promql"
)

// TestQueryRangeRunawayRejected is the regression test for the ROADMAP
// query-limits bug: /api/v1/query_range over a 63-year window at a 5 s step
// (~400M steps) used to spin the engine eagerly with no timeout. It must
// now fail fast with 422 — well before the request deadline — and without
// touching storage.
func TestQueryRangeRunawayRejected(t *testing.T) {
	h := testHandler(t)
	h.Timeout = 30 * time.Second
	mux := h.Mux()

	done := make(chan struct{})
	var code int
	var errMsg string
	go func() {
		defer close(done)
		rec, resp := get(t, mux, "/api/v1/query_range?query=up&start=0&end=2000000000&step=5")
		code, errMsg = rec.Code, resp.Error
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("runaway query_range did not return within 5s")
	}
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 (%s)", code, errMsg)
	}
	if !strings.Contains(errMsg, "steps") {
		t.Errorf("error %q should name the step limit", errMsg)
	}
}

// TestQueryRangeSampleBudgetRejected verifies the engine's sample budget
// surfaces as 422 through the API.
func TestQueryRangeSampleBudgetRejected(t *testing.T) {
	h := testHandler(t)
	eng := promql.NewEngine()
	eng.MaxSamples = 2
	h.Engine = eng
	rec, resp := get(t, h.Mux(), "/api/v1/query_range?query=up&start=0&end=600&step=15")
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d (%s), want 422", rec.Code, resp.Error)
	}
	if !strings.Contains(resp.Error, "sample budget") {
		t.Errorf("error %q should name the sample budget", resp.Error)
	}
}

// TestQueryTimeoutMapsTo503 verifies an already-expired deadline surfaces
// as 503, Prometheus's timeout semantics.
func TestQueryTimeoutMapsTo503(t *testing.T) {
	h := testHandler(t)
	h.Timeout = time.Nanosecond
	rec, resp := get(t, h.Mux(), "/api/v1/query_range?query=up&start=0&end=600&step=15")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503", rec.Code, resp.Error)
	}
}
