// Package grafana stands in for Grafana in the stack: datasources that
// speak the same two protocols Grafana uses against CEEMS — the Prometheus
// query API (through the CEEMS load balancer, with the X-Grafana-User
// header attached to every request, paper §II.B.c) and the CEEMS API
// server's JSON endpoints — plus a panel/dashboard engine that renders the
// three dashboard types of the paper's Fig. 2 as text: aggregate user
// stats (2a), the per-job table (2b), and time-series charts (2c).
package grafana

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/model"
)

// PromDS is the Prometheus-protocol datasource. BaseURL typically points
// at the CEEMS load balancer, which enforces access control using the
// user identity this datasource forwards.
type PromDS struct {
	BaseURL string
	Client  *http.Client
}

// InstantResult is one sample of an instant query.
type InstantResult struct {
	Metric map[string]string
	Value  float64
	TS     time.Time
}

// RangeResult is one series of a range query.
type RangeResult struct {
	Metric map[string]string
	Points []Point
}

// Point is one (time, value) pair.
type Point struct {
	TS    time.Time
	Value float64
}

type promEnvelope struct {
	Status string `json:"status"`
	Error  string `json:"error"`
	Data   struct {
		ResultType string          `json:"resultType"`
		Result     json.RawMessage `json:"result"`
	} `json:"data"`
}

func (ds *PromDS) client() *http.Client {
	if ds.Client != nil {
		return ds.Client
	}
	return http.DefaultClient
}

func (ds *PromDS) do(user, path string, params url.Values) (*promEnvelope, error) {
	req, err := http.NewRequest(http.MethodGet, ds.BaseURL+path+"?"+params.Encode(), nil)
	if err != nil {
		return nil, err
	}
	// The header Grafana attaches to every datasource request.
	req.Header.Set("X-Grafana-User", user)
	resp, err := ds.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	var env promEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		return nil, fmt.Errorf("grafana: bad response (%d): %s", resp.StatusCode, truncate(string(body), 200))
	}
	if env.Status != "success" {
		return nil, fmt.Errorf("grafana: query failed (%d): %s", resp.StatusCode, firstNonEmpty(env.Error, truncate(string(body), 200)))
	}
	return &env, nil
}

// Instant runs an instant query as the given user.
func (ds *PromDS) Instant(user, query string, ts time.Time) ([]InstantResult, error) {
	params := url.Values{"query": {query}, "time": {formatTS(ts)}}
	env, err := ds.do(user, "/api/v1/query", params)
	if err != nil {
		return nil, err
	}
	var raw []struct {
		Metric map[string]string `json:"metric"`
		Value  [2]any            `json:"value"`
	}
	if err := json.Unmarshal(env.Data.Result, &raw); err != nil {
		return nil, err
	}
	out := make([]InstantResult, len(raw))
	for i, r := range raw {
		v, t := decodePoint(r.Value)
		out[i] = InstantResult{Metric: r.Metric, Value: v, TS: t}
	}
	return out, nil
}

// Range runs a range query as the given user.
func (ds *PromDS) Range(user, query string, start, end time.Time, step time.Duration) ([]RangeResult, error) {
	params := url.Values{
		"query": {query},
		"start": {formatTS(start)}, "end": {formatTS(end)},
		"step": {fmt.Sprintf("%g", step.Seconds())},
	}
	env, err := ds.do(user, "/api/v1/query_range", params)
	if err != nil {
		return nil, err
	}
	var raw []struct {
		Metric map[string]string `json:"metric"`
		Values [][2]any          `json:"values"`
	}
	if err := json.Unmarshal(env.Data.Result, &raw); err != nil {
		return nil, err
	}
	out := make([]RangeResult, len(raw))
	for i, r := range raw {
		out[i].Metric = r.Metric
		for _, p := range r.Values {
			v, t := decodePoint(p)
			out[i].Points = append(out[i].Points, Point{TS: t, Value: v})
		}
	}
	return out, nil
}

func decodePoint(p [2]any) (float64, time.Time) {
	sec, _ := p[0].(float64)
	vs, _ := p[1].(string)
	v, _ := strconv.ParseFloat(vs, 64)
	return v, time.UnixMilli(int64(sec * 1000))
}

func formatTS(t time.Time) string {
	return strconv.FormatFloat(float64(t.UnixMilli())/1000, 'f', 3, 64)
}

// CEEMSDS is the CEEMS API server JSON datasource ("JSON DS" in Fig. 1).
type CEEMSDS struct {
	BaseURL string
	Client  *http.Client
}

func (ds *CEEMSDS) get(user, path string, out any) error {
	req, err := http.NewRequest(http.MethodGet, ds.BaseURL+path, nil)
	if err != nil {
		return err
	}
	req.Header.Set("X-Grafana-User", user)
	client := ds.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("grafana: ceems ds %s: %d: %s", path, resp.StatusCode, truncate(string(body), 200))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Units lists compute units visible to the user.
func (ds *CEEMSDS) Units(user, query string) ([]model.Unit, error) {
	var units []model.Unit
	path := "/api/v1/units"
	if query != "" {
		path += "?" + query
	}
	return units, ds.get(user, path, &units)
}

// UserUsage returns the user rollup rows visible to the user.
func (ds *CEEMSDS) UserUsage(user string) ([]map[string]any, error) {
	var rows []map[string]any
	return rows, ds.get(user, "/api/v1/users", &rows)
}

// ProjectUsage returns the project rollup rows visible to the user.
func (ds *CEEMSDS) ProjectUsage(user string) ([]map[string]any, error) {
	var rows []map[string]any
	return rows, ds.get(user, "/api/v1/projects", &rows)
}

// RenderUserOverview renders the Fig. 2a panel: aggregate usage metrics of
// one user (CPU/GPU usage, energy, emissions).
func RenderUserOverview(w io.Writer, ds *CEEMSDS, user string) error {
	rows, err := ds.UserUsage(user)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== User overview: %s ==\n", user)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "CLUSTER\tUNITS\tCPU-HOURS\tAVG CPU%\tAVG GPU%\tENERGY kWh\tEMISSIONS g")
	for _, r := range rows {
		fmt.Fprintf(tw, "%v\t%.0f\t%.1f\t%.1f\t%.1f\t%.3f\t%.1f\n",
			r["cluster"], num(r["num_units"]),
			num(r["cpu_time_sec"])/3600,
			num(r["avg_cpu_usage"])*100,
			num(r["avg_gpu_usage"])*100,
			num(r["total_energy_j"])/3.6e6,
			num(r["emissions_g"]))
	}
	return tw.Flush()
}

// RenderJobList renders the Fig. 2b panel: the user's compute units with
// per-unit aggregate metrics.
func RenderJobList(w io.Writer, ds *CEEMSDS, user string) error {
	units, err := ds.Units(user, "")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== Compute units of %s ==\n", user)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "UUID\tNAME\tPARTITION\tSTATE\tELAPSED\tCPUS\tAVG CPU%\tAVG MEM%\tENERGY kWh\tCO2 g")
	for _, u := range units {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%d\t%.1f\t%.1f\t%.4f\t%.2f\n",
			u.UUID, u.Name, u.Partition, u.State,
			(time.Duration(u.ElapsedSec) * time.Second).String(),
			u.CPUs,
			u.Aggregate.AvgCPUUsage*100,
			u.Aggregate.AvgCPUMemUsage*100,
			u.Aggregate.TotalEnergyKWh(),
			u.Aggregate.EmissionsGrams)
	}
	return tw.Flush()
}

// RenderTimeSeries renders a Fig. 2c style panel: one query's series over
// a window drawn as unicode sparklines.
func RenderTimeSeries(w io.Writer, ds *PromDS, user, title, query string, start, end time.Time, step time.Duration) error {
	series, err := ds.Range(user, query, start, end, step)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== %s ==\nquery: %s\n", title, query)
	for _, s := range series {
		name := s.Metric["uuid"]
		if name == "" {
			name = s.Metric["__name__"]
		}
		if name == "" {
			name = "series"
		}
		mn, mx := math.Inf(1), math.Inf(-1)
		for _, p := range s.Points {
			mn = math.Min(mn, p.Value)
			mx = math.Max(mx, p.Value)
		}
		fmt.Fprintf(w, "%-20s %s  [min %.2f  max %.2f]\n", name, Sparkline(s.Points, 60), mn, mx)
	}
	if len(series) == 0 {
		fmt.Fprintln(w, "(no data)")
	}
	return nil
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders points as a fixed-width unicode sparkline.
func Sparkline(points []Point, width int) string {
	if len(points) == 0 || width <= 0 {
		return ""
	}
	// Resample to width buckets.
	vals := make([]float64, width)
	counts := make([]int, width)
	for i, p := range points {
		b := i * width / len(points)
		vals[b] += p.Value
		counts[b]++
	}
	mn, mx := math.Inf(1), math.Inf(-1)
	for i := range vals {
		if counts[i] > 0 {
			vals[i] /= float64(counts[i])
			mn = math.Min(mn, vals[i])
			mx = math.Max(mx, vals[i])
		}
	}
	var b strings.Builder
	for i := range vals {
		if counts[i] == 0 {
			b.WriteByte(' ')
			continue
		}
		idx := 0
		if mx > mn {
			idx = int((vals[i] - mn) / (mx - mn) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

func num(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int64:
		return float64(x)
	case json.Number:
		f, _ := x.Float64()
		return f
	}
	return 0
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func firstNonEmpty(ss ...string) string {
	for _, s := range ss {
		if s != "" {
			return s
		}
	}
	return ""
}
