package grafana

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/promapi"
	"repro/internal/relstore"
	"repro/internal/tsdb"
)

func promBackend(t *testing.T) (*httptest.Server, *tsdb.DB) {
	t.Helper()
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	ls := labels.FromStrings(labels.MetricName, "power_watts", "uuid", "7")
	for i := int64(0); i <= 40; i++ {
		db.Append(ls, i*15000, 100+float64(i))
	}
	h := &promapi.Handler{Query: db, Now: func() time.Time { return time.UnixMilli(600_000) }}
	srv := httptest.NewServer(h.Mux())
	t.Cleanup(srv.Close)
	return srv, db
}

func TestPromDSForwardsUserHeader(t *testing.T) {
	var gotUser string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotUser = r.Header.Get("X-Grafana-User")
		w.Write([]byte(`{"status":"success","data":{"resultType":"vector","result":[]}}`))
	}))
	defer srv.Close()
	ds := &PromDS{BaseURL: srv.URL}
	if _, err := ds.Instant("alice", "up", time.Now()); err != nil {
		t.Fatal(err)
	}
	if gotUser != "alice" {
		t.Errorf("X-Grafana-User = %q", gotUser)
	}
}

func TestPromDSInstantAndRange(t *testing.T) {
	srv, _ := promBackend(t)
	ds := &PromDS{BaseURL: srv.URL}
	res, err := ds.Instant("u", "power_watts", time.UnixMilli(600_000))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Value != 140 || res[0].Metric["uuid"] != "7" {
		t.Errorf("instant = %+v", res)
	}
	rr, err := ds.Range("u", "power_watts", time.UnixMilli(0), time.UnixMilli(600_000), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr) != 1 || len(rr[0].Points) != 11 {
		t.Errorf("range = %+v", rr)
	}
}

func TestPromDSErrorSurfaced(t *testing.T) {
	srv, _ := promBackend(t)
	ds := &PromDS{BaseURL: srv.URL}
	if _, err := ds.Instant("u", "sum(", time.Now()); err == nil {
		t.Error("parse error not surfaced")
	}
}

func ceemsBackend(t *testing.T) *httptest.Server {
	t.Helper()
	store, _ := relstore.Open("")
	for _, s := range api.Schemas() {
		store.CreateTable(s)
	}
	srv := &api.Server{Store: store}
	store.Upsert(api.TableUnits, relstore.Row{
		"uuid": "c/slurm/1", "id": "1", "cluster": "c", "user": "alice",
		"project": "p", "name": "train", "partition": "cpu", "state": "running",
		"elapsed_sec": int64(120), "cpus": int64(8),
		"avg_cpu_usage": 0.75, "total_energy_j": 3.6e6, "emissions_g": 56.0,
	})
	store.Upsert(api.TableUsers, relstore.Row{
		"key": "c/alice", "cluster": "c", "user": "alice", "num_units": int64(1),
		"cpu_time_sec": 720.0, "avg_cpu_usage": 0.75, "total_energy_j": 3.6e6,
		"emissions_g": 56.0,
	})
	s := httptest.NewServer(srv.Handler())
	t.Cleanup(s.Close)
	return s
}

func TestRenderUserOverview(t *testing.T) {
	srv := ceemsBackend(t)
	ds := &CEEMSDS{BaseURL: srv.URL}
	var sb strings.Builder
	if err := RenderUserOverview(&sb, ds, "alice"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"alice", "1.000", "56.0", "ENERGY kWh"} {
		if !strings.Contains(out, want) {
			t.Errorf("overview missing %q:\n%s", want, out)
		}
	}
}

func TestRenderJobList(t *testing.T) {
	srv := ceemsBackend(t)
	ds := &CEEMSDS{BaseURL: srv.URL}
	var sb strings.Builder
	if err := RenderJobList(&sb, ds, "alice"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "c/slurm/1") || !strings.Contains(out, "train") {
		t.Errorf("job list missing fields:\n%s", out)
	}
	if !strings.Contains(out, "75.0") {
		t.Errorf("cpu%% missing:\n%s", out)
	}
}

func TestRenderTimeSeries(t *testing.T) {
	srv, _ := promBackend(t)
	ds := &PromDS{BaseURL: srv.URL}
	var sb strings.Builder
	err := RenderTimeSeries(&sb, ds, "u", "Power", `power_watts{uuid="7"}`,
		time.UnixMilli(0), time.UnixMilli(600_000), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Power") || !strings.Contains(out, "max") {
		t.Errorf("timeseries render:\n%s", out)
	}
	// Ramp should render increasing spark levels.
	if !strings.ContainsRune(out, '█') || !strings.ContainsRune(out, '▁') {
		t.Errorf("sparkline missing ramp:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	pts := make([]Point, 100)
	for i := range pts {
		pts[i] = Point{Value: float64(i)}
	}
	s := Sparkline(pts, 10)
	if len([]rune(s)) != 10 {
		t.Errorf("width = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[9] != '█' {
		t.Errorf("ramp = %q", s)
	}
	if Sparkline(nil, 10) != "" {
		t.Error("empty input should render empty")
	}
	// Constant series renders uniformly.
	for i := range pts {
		pts[i] = Point{Value: 5}
	}
	s = Sparkline(pts, 10)
	for _, r := range s {
		if r != '▁' {
			t.Errorf("constant series = %q", s)
			break
		}
	}
	_ = model.UnitRunning
}
