package scrape

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/labels"
	"repro/internal/tsdb"
)

// stringFetcher serves a fixed payload per target.
type stringFetcher struct {
	payloads map[string]string
	calls    atomic.Int64
}

func (f *stringFetcher) Fetch(_ context.Context, target string) (io.ReadCloser, error) {
	f.calls.Add(1)
	p, ok := f.payloads[target]
	if !ok {
		return nil, errors.New("no such target")
	}
	return io.NopCloser(strings.NewReader(p)), nil
}

const payload = `# TYPE node_energy_joules_total counter
node_energy_joules_total{domain="cpu"} 12345.6
node_energy_joules_total{domain="dram"} 789.1
# TYPE node_cpus gauge
node_cpus 64
`

func TestScrapeAppendsWithTargetLabels(t *testing.T) {
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	f := &stringFetcher{payloads: map[string]string{"n1:9100": payload}}
	fixed := time.Unix(1000, 0)
	m := &Manager{
		Dest: db, Fetcher: f,
		Groups: []*TargetGroup{{
			JobName: "ceems", Targets: []string{"n1:9100"},
			Labels: map[string]string{"cluster": "jz"},
		}},
		Now: func() time.Time { return fixed },
	}
	m.ScrapeAll(context.Background())

	got, _ := db.Select(0, 1<<60, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "node_energy_joules_total"))
	if len(got) != 2 {
		t.Fatalf("series = %d, want 2", len(got))
	}
	ls := got[0].Labels
	if ls.Get("job") != "ceems" || ls.Get("instance") != "n1:9100" || ls.Get("cluster") != "jz" {
		t.Errorf("target labels missing: %v", ls)
	}
	if got[0].Samples[0].T != fixed.UnixMilli() {
		t.Errorf("scrape ts = %d", got[0].Samples[0].T)
	}
	// up = 1 recorded.
	up, _ := db.Select(0, 1<<60, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "up"))
	if len(up) != 1 || up[0].Samples[0].V != 1 {
		t.Errorf("up = %+v", up)
	}
	h := m.Health()["ceems/n1:9100"]
	if !h.Up || h.Samples != 3 {
		t.Errorf("health = %+v", h)
	}
}

func TestScrapeFailureRecordsDown(t *testing.T) {
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	f := &stringFetcher{payloads: map[string]string{}}
	var gotErr atomic.Bool
	m := &Manager{
		Dest: db, Fetcher: f,
		Groups:  []*TargetGroup{{JobName: "j", Targets: []string{"down:9100"}}},
		Now:     func() time.Time { return time.Unix(1000, 0) },
		OnError: func(string, error) { gotErr.Store(true) },
	}
	m.ScrapeAll(context.Background())
	up, _ := db.Select(0, 1<<60, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "up"))
	if len(up) != 1 || up[0].Samples[0].V != 0 {
		t.Fatalf("up = %+v, want 0", up)
	}
	if !gotErr.Load() {
		t.Error("OnError not invoked")
	}
	if h := m.Health()["j/down:9100"]; h.Up || h.LastError == "" {
		t.Errorf("health = %+v", h)
	}
}

func TestScrapeSuccessiveTimestamps(t *testing.T) {
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	f := &stringFetcher{payloads: map[string]string{"n1": "m 1\n"}}
	now := time.Unix(1000, 0)
	m := &Manager{
		Dest: db, Fetcher: f,
		Groups: []*TargetGroup{{JobName: "j", Targets: []string{"n1"}}},
		Now:    func() time.Time { return now },
	}
	for i := 0; i < 3; i++ {
		m.ScrapeAll(context.Background())
		now = now.Add(15 * time.Second)
	}
	got, _ := db.Select(0, 1<<60, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "m"))
	if len(got) != 1 || len(got[0].Samples) != 3 {
		t.Fatalf("scrape accumulation: %+v", got)
	}
}

func TestHonorTimestamps(t *testing.T) {
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	f := &stringFetcher{payloads: map[string]string{"n1": "m 5 12345\n"}}
	m := &Manager{
		Dest: db, Fetcher: f, HonorTimestamps: true,
		Groups: []*TargetGroup{{JobName: "j", Targets: []string{"n1"}}},
		Now:    func() time.Time { return time.Unix(1000, 0) },
	}
	m.ScrapeAll(context.Background())
	got, _ := db.Select(0, 1<<60, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "m"))
	if got[0].Samples[0].T != 12345 {
		t.Errorf("honored ts = %d, want 12345", got[0].Samples[0].T)
	}
}

func TestHTTPFetcher(t *testing.T) {
	var sawAuth atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if u, p, ok := r.BasicAuth(); ok && u == "ceems" && p == "secret" {
			sawAuth.Store(true)
		}
		w.Write([]byte(payload))
	}))
	defer srv.Close()

	f := &HTTPFetcher{Username: "ceems", Password: "secret"}
	body, err := f.Fetch(context.Background(), srv.URL)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	data, _ := io.ReadAll(body)
	body.Close()
	if !strings.Contains(string(data), "node_cpus 64") {
		t.Errorf("payload = %s", data)
	}
	if !sawAuth.Load() {
		t.Error("basic auth not sent")
	}
}

func TestHTTPFetcherHostPort(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte("ok 1\n"))
	}))
	defer srv.Close()
	hostport := strings.TrimPrefix(srv.URL, "http://")
	f := &HTTPFetcher{}
	body, err := f.Fetch(context.Background(), hostport)
	if err != nil {
		t.Fatalf("Fetch host:port: %v", err)
	}
	body.Close()
}

func TestHTTPFetcherNon200(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "nope", http.StatusForbidden)
	}))
	defer srv.Close()
	f := &HTTPFetcher{}
	if _, err := f.Fetch(context.Background(), srv.URL); err == nil {
		t.Error("expected error for 403")
	}
}

func TestRunScrapesOnInterval(t *testing.T) {
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	f := &stringFetcher{payloads: map[string]string{"n1": "m 1\n"}}
	m := &Manager{
		Dest: db, Fetcher: f,
		Groups: []*TargetGroup{{
			JobName: "j", Targets: []string{"n1"},
			Interval: 10 * time.Millisecond,
		}},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	m.Run(ctx)
	if calls := f.calls.Load(); calls < 3 {
		t.Errorf("expected >=3 scrapes, got %d", calls)
	}
}

func BenchmarkScrapeParseAppend(b *testing.B) {
	// Build a realistic exporter payload: ~300 samples.
	var sb strings.Builder
	sb.WriteString("# TYPE node_cpu_seconds_total counter\n")
	for cpu := 0; cpu < 64; cpu++ {
		for _, mode := range []string{"user", "system", "idle", "iowait"} {
			sb.WriteString("node_cpu_seconds_total{cpu=\"")
			sb.WriteString(string(rune('0' + cpu%10)))
			sb.WriteString("\",mode=\"")
			sb.WriteString(mode)
			sb.WriteString("\"} 123.45\n")
		}
	}
	payload := sb.String()
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	f := &stringFetcher{payloads: map[string]string{"n1": payload}}
	now := time.Unix(0, 0)
	m := &Manager{
		Dest: db, Fetcher: f,
		Groups: []*TargetGroup{{JobName: "j", Targets: []string{"n1"}}},
		Now:    func() time.Time { return now },
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(15 * time.Second)
		m.ScrapeAll(context.Background())
	}
}

// failingBatch accepts adds but fails every commit — the shape of a
// ring-routed batch that cannot reach its write quorum.
type failingBatch struct{ adds int }

func (b *failingBatch) Add(labels.Labels, int64, float64) { b.adds++ }
func (b *failingBatch) Commit() (int, error)              { return 0, errors.New("write quorum failed") }

// TestScrapeCommitErrorRecordsDown: a batch commit failure is a failed
// scrape — the target goes down with the commit error in its health, it
// doesn't silently stay green while nothing was durably ingested.
func TestScrapeCommitErrorRecordsDown(t *testing.T) {
	f := &stringFetcher{payloads: map[string]string{"n1:9100": payload}}
	var errCount atomic.Int64
	m := &Manager{
		Dest: tsdb.MustOpen(tsdb.DefaultOptions()), Fetcher: f,
		Groups:   []*TargetGroup{{JobName: "j", Targets: []string{"n1:9100"}}},
		NewBatch: func() Batch { return &failingBatch{} },
		Now:      func() time.Time { return time.Unix(1000, 0) },
		OnError:  func(string, error) { errCount.Add(1) },
	}
	m.ScrapeAll(context.Background())
	h := m.Health()["j/n1:9100"]
	if h.Up {
		t.Fatalf("target should be down after commit failure, health = %+v", h)
	}
	if !strings.Contains(h.LastError, "write quorum failed") {
		t.Fatalf("LastError should carry the commit error, got %q", h.LastError)
	}
	if h.Samples != 0 {
		t.Fatalf("no samples were durable, health reports %d", h.Samples)
	}
	if errCount.Load() == 0 {
		t.Fatal("OnError not invoked for commit failure")
	}
}
