package scrape

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/tsdb"
)

// TestBatchedScrapeMatchesPerSample scrapes the same target sequence twice —
// once through the per-sample Append path, once through the batch Appender —
// and asserts the resulting storage contents are identical, including the
// staleness marker for the series that vanishes between scrapes.
func TestBatchedScrapeMatchesPerSample(t *testing.T) {
	const first = `# TYPE m gauge
m{k="a"} 1
m{k="b"} 2
`
	const second = `# TYPE m gauge
m{k="a"} 3
`
	run := func(batched bool) *tsdb.DB {
		db := tsdb.MustOpen(tsdb.DefaultOptions())
		f := &stringFetcher{payloads: map[string]string{"n1:9100": first}}
		now := time.Unix(1000, 0)
		m := &Manager{
			Dest: db, Fetcher: f,
			Groups: []*TargetGroup{{JobName: "j", Targets: []string{"n1:9100"}}},
			Now:    func() time.Time { return now },
		}
		if batched {
			m.NewBatch = func() Batch { return db.Appender() }
		}
		m.ScrapeAll(context.Background())
		f.payloads["n1:9100"] = second
		now = now.Add(15 * time.Second)
		m.ScrapeAll(context.Background())
		return db
	}
	plain := run(false)
	batched := run(true)

	all := labels.MustMatcher(labels.MatchRegexp, labels.MetricName, ".+")
	want, err := plain.Select(0, 1<<60, all)
	if err != nil {
		t.Fatal(err)
	}
	got, err := batched.Select(0, 1<<60, all)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("series count: batched %d, per-sample %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Labels.Equal(want[i].Labels) {
			t.Fatalf("series %d labels: %v vs %v", i, got[i].Labels, want[i].Labels)
		}
		if len(got[i].Samples) != len(want[i].Samples) {
			t.Fatalf("%v: %d vs %d samples", want[i].Labels, len(got[i].Samples), len(want[i].Samples))
		}
		for j := range want[i].Samples {
			a, b := got[i].Samples[j], want[i].Samples[j]
			if a.T != b.T || math.Float64bits(a.V) != math.Float64bits(b.V) {
				t.Errorf("%v sample %d: %+v vs %+v", want[i].Labels, j, a, b)
			}
		}
	}

	// The vanished series must carry a staleness marker in both paths.
	vanished, _ := batched.Select(0, 1<<60,
		labels.MustMatcher(labels.MatchEqual, labels.MetricName, "m"),
		labels.MustMatcher(labels.MatchEqual, "k", "b"))
	if len(vanished) != 1 {
		t.Fatalf("vanished series missing: %v", vanished)
	}
	last := vanished[0].Samples[len(vanished[0].Samples)-1]
	if !model.IsStaleNaN(last.V) {
		t.Errorf("expected staleness marker, got %v", last.V)
	}
}
