// Package scrape implements the Prometheus scrape loop: it polls exporter
// endpoints on an interval, parses the text exposition format and appends
// the samples to storage with target labels attached, plus the synthetic
// `up` and `scrape_duration_seconds` series.
//
// Targets are fetched through the Fetcher interface. HTTPFetcher speaks
// real HTTP (with optional basic auth); simulations can scrape thousands of
// in-process exporters by providing a direct Fetcher, avoiding socket
// exhaustion while exercising the same parse/append path.
package scrape

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/expofmt"
	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/workpool"
)

// Appender receives scraped samples; *tsdb.DB satisfies it.
type Appender interface {
	Append(lset labels.Labels, t int64, v float64) error
}

// Batch buffers samples for bulk commits. *tsdb.Appender satisfies it
// structurally: a scrape commits in O(1) shard-lock round-trips (one bulk
// commit for the metric samples, one small commit for staleness markers
// and synthetics) instead of a lock round-trip per sample. Commit skips
// out-of-order samples — the tolerance the per-sample path implemented by
// ignoring Append errors — returns how many samples landed, and must leave
// the batch reusable, as tsdb.Appender does.
type Batch interface {
	Add(lset labels.Labels, t int64, v float64)
	Commit() (int, error)
}

// Fetcher retrieves the exposition payload of one target.
type Fetcher interface {
	Fetch(ctx context.Context, target string) (io.ReadCloser, error)
}

// HTTPFetcher fetches over HTTP with optional basic auth.
type HTTPFetcher struct {
	Client   *http.Client
	Username string
	Password string
}

// Fetch issues GET http://<target>/metrics unless target already looks like
// a URL.
func (f *HTTPFetcher) Fetch(ctx context.Context, target string) (io.ReadCloser, error) {
	url := target
	if len(url) < 7 || (url[:7] != "http://" && (len(url) < 8 || url[:8] != "https://")) {
		url = "http://" + target + "/metrics"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if f.Username != "" {
		req.SetBasicAuth(f.Username, f.Password)
	}
	client := f.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("scrape: %s returned %s", url, resp.Status)
	}
	return resp.Body, nil
}

// TargetGroup is a set of targets scraped with common settings, mirroring a
// Prometheus scrape config. The paper relies on distinct groups per
// hardware class ("grouping them in different scrape target groups").
type TargetGroup struct {
	// JobName becomes the `job` label.
	JobName string `yaml:"job_name"`
	// Targets are exporter addresses (host:port or full URLs).
	Targets []string `yaml:"targets"`
	// Labels are attached to every sample of the group.
	Labels map[string]string `yaml:"labels"`
	// Interval between scrapes; default 15s.
	Interval time.Duration `yaml:"interval"`
	// Timeout per scrape; default 10s.
	Timeout time.Duration `yaml:"timeout"`
}

// Manager drives scrape loops for a set of target groups.
type Manager struct {
	Dest    Appender
	Fetcher Fetcher
	Groups  []*TargetGroup
	// HonorTimestamps controls whether explicit exposition timestamps are
	// kept; when false (default) the scrape time is used, as Prometheus
	// does by default.
	HonorTimestamps bool
	// Now supplies the scrape timestamp; defaults to time.Now.
	Now func() time.Time
	// OnError receives scrape errors; nil drops them. ScrapeAll may invoke
	// it concurrently from its worker pool.
	OnError func(target string, err error)
	// Parallelism sets ScrapeAll's worker count (may exceed GOMAXPROCS —
	// scraping is I/O-bound); 0 means GOMAXPROCS, 1 forces the old
	// sequential behavior.
	Parallelism int
	// NewBatch, when set, supplies a buffered batch per scrape so a whole
	// scrape pass (metrics, staleness markers and the synthetic
	// up/duration series) commits to storage in O(1) bulk round-trips.
	// Wire it to tsdb.DB's batch Appender: func() scrape.Batch { return
	// db.Appender() }. Nil keeps the per-sample Append path.
	//
	// Staleness tracking in batch mode is exposition-based: a series that
	// appears in the scrape counts as present even when its (honored)
	// timestamp is dropped as out-of-order at Commit. The per-sample path
	// would mark such a series stale and revive it next scrape; counting
	// exposed series avoids that marker flapping.
	NewBatch func() Batch

	mu     sync.Mutex
	health map[string]TargetHealth
	// seen tracks, per target, the series appended by the previous scrape
	// so vanished series get staleness markers (as Prometheus does).
	seen map[string]map[uint64]labels.Labels

	metrics *scrapeMetrics
}

// scrapeMetrics is the manager's instrumentation; nil disables it (the
// scrape path pays one branch per pass).
type scrapeMetrics struct {
	scrapes       *telemetry.Counter
	failures      *telemetry.Counter
	samples       *telemetry.Counter
	commitSeconds *telemetry.Histogram
}

// InstrumentTelemetry registers the manager's instruments on reg. Call once
// before the first scrape; scrapes running concurrently with registration
// would race on the metrics pointer.
func (m *Manager) InstrumentTelemetry(reg *telemetry.Registry) {
	m.metrics = &scrapeMetrics{
		scrapes: reg.Counter("telemetry_scrape_passes_total",
			"Completed scrape passes (one target, one interval tick)."),
		failures: reg.Counter("telemetry_scrape_failures_total",
			"Scrape passes that failed to fetch, parse or durably commit."),
		samples: reg.Counter("telemetry_scrape_samples_committed_total",
			"Samples landed in storage by scrape commits (batch mode counts Commit's answer)."),
		commitSeconds: reg.Histogram("telemetry_scrape_commit_seconds",
			"Latency of one scrape batch commit (metric samples or the staleness/synthetics tail).",
			telemetry.IOBuckets),
	}
}

// TargetHealth is the status of one target.
type TargetHealth struct {
	Up           bool
	LastScrape   time.Time
	LastDuration time.Duration
	LastError    string
	Samples      int
}

// Run scrapes all groups on their intervals until ctx is cancelled.
func (m *Manager) Run(ctx context.Context) {
	var wg sync.WaitGroup
	for _, g := range m.Groups {
		interval := g.Interval
		if interval <= 0 {
			interval = 15 * time.Second
		}
		for _, target := range g.Targets {
			wg.Add(1)
			go func(g *TargetGroup, target string) {
				defer wg.Done()
				tick := time.NewTicker(interval)
				defer tick.Stop()
				for {
					select {
					case <-ctx.Done():
						return
					case <-tick.C:
						m.ScrapeTarget(ctx, g, target)
					}
				}
			}(g, target)
		}
	}
	wg.Wait()
}

// ScrapeAll scrapes every target of every group once; simulations use this
// with a virtual clock instead of Run. Targets are scraped concurrently on
// a bounded worker pool (Parallelism workers; see that field), which both
// matches Run's per-target goroutines and exercises the sharded TSDB head
// the way a real fleet does; each target writes disjoint series (distinct
// instance labels), so concurrency cannot reorder samples within a series.
// OnError may be invoked from multiple goroutines.
func (m *Manager) ScrapeAll(ctx context.Context) {
	type job struct {
		g      *TargetGroup
		target string
	}
	var jobs []job
	for _, g := range m.Groups {
		for _, target := range g.Targets {
			jobs = append(jobs, job{g, target})
		}
	}
	workpool.Do(len(jobs), m.Parallelism, func(i int) {
		m.ScrapeTarget(ctx, jobs[i].g, jobs[i].target)
	})
}

// appendSink routes one scrape pass's samples either straight to the
// Appender or into a per-scrape Batch flushed in bulk.
type appendSink struct {
	dest    Appender
	batch   Batch
	metrics *scrapeMetrics
}

func (s *appendSink) add(ls labels.Labels, t int64, v float64) error {
	if s.batch != nil {
		s.batch.Add(ls, t, v)
		return nil
	}
	return s.dest.Append(ls, t, v)
}

// commit flushes staged samples in batch mode, returning how many landed
// (Commit skips out-of-order samples). A no-op per-sample.
func (s *appendSink) commit() (int, error) {
	if s.batch == nil {
		return 0, nil
	}
	if s.metrics == nil {
		return s.batch.Commit()
	}
	start := time.Now()
	n, err := s.batch.Commit()
	s.metrics.commitSeconds.ObserveSince(start)
	if n > 0 {
		s.metrics.samples.Add(uint64(n))
	}
	return n, err
}

// ScrapeTarget performs one scrape of one target, appending samples and the
// synthetic up/duration series. With NewBatch configured, the entire pass —
// metric samples, staleness markers and synthetics — lands in one commit.
func (m *Manager) ScrapeTarget(ctx context.Context, g *TargetGroup, target string) {
	now := time.Now
	if m.Now != nil {
		now = m.Now
	}
	timeout := g.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	sctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	sink := &appendSink{dest: m.Dest, metrics: m.metrics}
	if m.NewBatch != nil {
		sink.batch = m.NewBatch()
	}
	start := now()
	ts := start.UnixMilli()
	samples, err := m.scrapeOnce(sctx, sink, g, target, ts)
	dur := time.Since(start)
	if m.Now != nil {
		dur = 0 // wall-clock duration is meaningless under a virtual clock
	}

	upVal := 1.0
	errStr := ""
	if err != nil {
		upVal = 0
		errStr = err.Error()
		if m.OnError != nil {
			m.OnError(target, err)
		}
	}
	base := m.targetLabels(g, target)
	up := labels.NewBuilder(base).Set(labels.MetricName, "up").Labels()
	sd := labels.NewBuilder(base).Set(labels.MetricName, "scrape_duration_seconds").Labels()
	sink.add(up, ts, upVal)
	sink.add(sd, ts, dur.Seconds())
	// Second, small commit: staleness markers plus the synthetics. Their
	// out-of-order skips are silent, but a commit ERROR (e.g. a lost write
	// quorum) marks the target down just like the metric commit would —
	// none of this scrape's samples are reliably durable.
	if _, cerr := sink.commit(); cerr != nil {
		if m.OnError != nil {
			m.OnError(target, cerr)
		}
		upVal = 0
		if errStr == "" {
			errStr = fmt.Sprintf("commit: %v", cerr)
		}
	}

	if mm := m.metrics; mm != nil {
		mm.scrapes.Inc()
		if upVal == 0 {
			mm.failures.Inc()
		}
		// Per-sample mode has no commit to count through; credit the pass's
		// appended samples here so the counter works either way.
		if sink.batch == nil && samples > 0 {
			mm.samples.Add(uint64(samples))
		}
	}

	m.mu.Lock()
	if m.health == nil {
		m.health = map[string]TargetHealth{}
	}
	m.health[g.JobName+"/"+target] = TargetHealth{
		Up: upVal == 1, LastScrape: start, LastDuration: dur,
		LastError: errStr, Samples: samples,
	}
	m.mu.Unlock()
}

func (m *Manager) scrapeOnce(ctx context.Context, sink *appendSink, g *TargetGroup, target string, ts int64) (int, error) {
	body, err := m.Fetcher.Fetch(ctx, target)
	if err != nil {
		return 0, err
	}
	defer body.Close()
	fams, err := expofmt.Parse(body)
	if err != nil {
		return 0, err
	}
	base := m.targetLabels(g, target)
	n := 0
	cur := make(map[uint64]labels.Labels)
	for _, fam := range fams {
		for _, metric := range fam.Metrics {
			b := labels.NewBuilder(metric.Labels)
			// Target labels win over exposed labels (honor_labels=false).
			for _, l := range base {
				b.Set(l.Name, l.Value)
			}
			ls := b.Labels()
			t := ts
			if m.HonorTimestamps && metric.TS != 0 {
				t = metric.TS
			}
			if err := sink.add(ls, t, metric.Value); err != nil {
				// Out-of-order duplicates can occur when a scrape overlaps
				// a retry; skip the sample but keep scraping. (The batch
				// path defers this tolerance to Commit.)
				continue
			}
			cur[ls.Hash()] = ls
			n++
		}
	}
	// Batch mode: commit the metric samples on their own so n reflects
	// exactly what landed (Commit skips out-of-order duplicates), matching
	// the per-sample path's count. The staleness markers staged below ride
	// the scrape's second commit together with the synthetic series.
	// A commit error is a failed scrape, not a skippable hiccup: a
	// ring-routed batch that misses its write quorum was NOT durably
	// ingested, and the target must show down with the error in its
	// health — so it propagates like a fetch failure after the staleness
	// bookkeeping below.
	var commitErr error
	if sink.batch != nil {
		appended, cerr := sink.commit()
		n = appended
		commitErr = cerr
	}
	// Staleness: series present last scrape but absent now get a marker so
	// queries stop seeing them immediately.
	key := g.JobName + "/" + target
	m.mu.Lock()
	prev := m.seen[key]
	if m.seen == nil {
		m.seen = map[string]map[uint64]labels.Labels{}
	}
	m.seen[key] = cur
	m.mu.Unlock()
	for h, ls := range prev {
		if _, still := cur[h]; !still {
			sink.add(ls, ts, model.StaleNaN())
		}
	}
	if commitErr != nil {
		return n, fmt.Errorf("commit: %w", commitErr)
	}
	return n, nil
}

func (m *Manager) targetLabels(g *TargetGroup, target string) labels.Labels {
	b := labels.NewBuilder(nil)
	b.Set("job", g.JobName)
	b.Set("instance", target)
	for k, v := range g.Labels {
		b.Set(k, v)
	}
	return b.Labels()
}

// Health returns a copy of the per-target health map keyed by
// "<job>/<target>".
func (m *Manager) Health() map[string]TargetHealth {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]TargetHealth, len(m.health))
	for k, v := range m.health {
		out[k] = v
	}
	return out
}
