package scrape

import (
	"context"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/promql"
	"repro/internal/tsdb"
)

// mutableFetcher lets the test change the payload between scrapes.
type mutableFetcher struct {
	mu      sync.Mutex
	payload string
}

func (f *mutableFetcher) set(p string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.payload = p
}

func (f *mutableFetcher) Fetch(context.Context, string) (io.ReadCloser, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return io.NopCloser(strings.NewReader(f.payload)), nil
}

// When a job's cgroup series vanishes from a scrape, a staleness marker
// must end its visibility immediately — not after the 5-minute lookback.
// This is the invariant that keeps Σ per-unit power conserved under job
// churn (the E8 experiment regressed without it).
func TestStalenessMarkersOnSeriesDisappearance(t *testing.T) {
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	f := &mutableFetcher{payload: "job_cpu{uuid=\"1\"} 10\njob_cpu{uuid=\"2\"} 20\n"}
	now := time.Unix(1000, 0)
	m := &Manager{
		Dest: db, Fetcher: f,
		Groups: []*TargetGroup{{JobName: "j", Targets: []string{"n1"}}},
		Now:    func() time.Time { return now },
	}
	ctx := context.Background()
	m.ScrapeAll(ctx)

	// Job 2 finishes: its series disappears from the exposition.
	now = now.Add(15 * time.Second)
	f.set("job_cpu{uuid=\"1\"} 11\n")
	m.ScrapeAll(ctx)

	eng := promql.NewEngine()
	v, err := eng.Instant(db, `job_cpu`, now)
	if err != nil {
		t.Fatal(err)
	}
	vec := v.(promql.Vector)
	if len(vec) != 1 || vec[0].Labels.Get("uuid") != "1" {
		t.Fatalf("stale series still visible: %+v", vec)
	}
	// Aggregations see only the live series.
	v, _ = eng.Instant(db, `sum(job_cpu)`, now)
	if sum := v.(promql.Vector)[0].V; sum != 11 {
		t.Errorf("sum over stale = %v, want 11", sum)
	}
	// Range functions skip the marker.
	now = now.Add(15 * time.Second)
	f.set("job_cpu{uuid=\"1\"} 12\n")
	m.ScrapeAll(ctx)
	v, err = eng.Instant(db, `count_over_time(job_cpu{uuid="2"}[1m])`, now)
	if err != nil {
		t.Fatal(err)
	}
	vec = v.(promql.Vector)
	if len(vec) != 1 || vec[0].V != 1 {
		t.Errorf("stale sample counted in range: %+v", vec)
	}
	// A series that reappears becomes visible again.
	now = now.Add(15 * time.Second)
	f.set("job_cpu{uuid=\"1\"} 13\njob_cpu{uuid=\"2\"} 99\n")
	m.ScrapeAll(ctx)
	v, _ = eng.Instant(db, `job_cpu`, now)
	if len(v.(promql.Vector)) != 2 {
		t.Errorf("reappeared series missing: %+v", v)
	}
}

func TestStaleNaNDistinctFromNaN(t *testing.T) {
	if !model.IsStaleNaN(model.StaleNaN()) {
		t.Error("StaleNaN not detected")
	}
	var plain float64 = 0
	plain = plain / plain // NaN
	if model.IsStaleNaN(plain) {
		t.Error("ordinary NaN misdetected as stale")
	}
	// The marker survives the TSDB round trip.
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	ls := labels.FromStrings(labels.MetricName, "m")
	db.Append(ls, 1000, 5)
	db.Append(ls, 2000, model.StaleNaN())
	got, _ := db.Select(0, 3000, labels.MustMatcher(labels.MatchEqual, labels.MetricName, "m"))
	if !model.IsStaleNaN(got[0].Samples[1].V) {
		t.Error("stale marker corrupted by chunk encoding")
	}
}
