package querycache

import (
	"sync"
	"sync/atomic"
)

// flight is one in-progress cold evaluation; followers block on done until
// the leader stores its result (or gives up).
type flight struct {
	done    chan struct{}
	waiters atomic.Int32
}

// flightGroup collapses concurrent cold evaluations of one cache key into a
// single backend call: the first caller (the leader) evaluates and fills
// the entry; everyone else parks on the latch and retries the lookup once
// the leader finishes, which normally serves them from what it stored.
// Grafana dashboards produce exactly this shape — a panel refresh fans the
// same query out N times within milliseconds of a cold or just-invalidated
// cache — and without the latch every copy re-evaluates the full window.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// begin either makes the caller the leader for key (leader=true; it must
// call end once its evaluation is stored or abandoned, error included) or
// registers it as a waiter on the current leader's flight.
func (g *flightGroup) begin(key string) (leader bool, f *flight) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f := g.m[key]; f != nil {
		f.waiters.Add(1)
		return false, f
	}
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	f = &flight{done: make(chan struct{})}
	g.m[key] = f
	return true, f
}

// end releases the latch for key, waking every parked follower.
func (g *flightGroup) end(key string) {
	g.mu.Lock()
	f := g.m[key]
	delete(g.m, key)
	g.mu.Unlock()
	if f != nil {
		close(f.done)
	}
}

// waiting reports how many callers are parked across all in-flight
// evaluations; the stampede test uses it as a deterministic barrier.
func (g *flightGroup) waiting() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, f := range g.m {
		n += int(f.waiters.Load())
	}
	return n
}
