package querycache

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/promql"
	"repro/internal/tsdb"
)

// benchWindow is the dashboard panel the benchmarks model: a 1-hour panel
// at 15s resolution (241 steps), 100 series aggregated by rate.
const (
	benchSteps  = 240
	benchSeries = 100
	benchQuery  = "sum by (i) (rate(b1[1m]))"
)

type benchEnv struct {
	db   *tsdb.DB
	eng  *promql.Engine
	last int64 // watermark, ms
}

func newBenchEnv(b *testing.B) *benchEnv {
	b.Helper()
	env := &benchEnv{
		db:  tsdb.MustOpen(tsdb.Options{MaxSamplesPerChunk: 120, Shards: 4}),
		eng: promql.NewEngine(),
	}
	// History: two full windows plus lookback slack, so splice patterns can
	// slide without appending mid-benchmark.
	base := int64(1_000_000_000)
	ticks := 3*benchSteps + 40
	for i := 0; i < benchSeries; i++ {
		ls := labels.FromStrings(labels.MetricName, "b1", "i", fmt.Sprint(i))
		samples := make([]model.Sample, ticks)
		for k := 0; k < ticks; k++ {
			samples[k] = model.Sample{T: base + int64(k)*stepMs, V: float64(k*7 + i)}
		}
		if err := env.db.AppendSeries(ls, samples); err != nil {
			b.Fatal(err)
		}
	}
	env.last = base + int64(ticks-1)*stepMs
	return env
}

func (e *benchEnv) newCache() *Cache {
	return New(Options{MaxBytes: 256 << 20, Shards: 4, Head: e.db, Lookback: e.eng.LookbackDelta})
}

func (e *benchEnv) eval() RangeEval {
	return func(ctx context.Context, s, end time.Time, st time.Duration) (promql.Matrix, error) {
		return e.eng.RangeCtx(ctx, e.db, benchQuery, s, end, st)
	}
}

func (e *benchEnv) query(b *testing.B, c *Cache, startMs, endMs int64, want Outcome) {
	b.Helper()
	m, out, err := c.RangeQuery(context.Background(), benchQuery,
		model.MillisToTime(startMs), model.MillisToTime(endMs), stepMs*time.Millisecond, e.eval())
	if err != nil {
		b.Fatal(err)
	}
	if out != want {
		b.Fatalf("outcome = %s, want %s", out, want)
	}
	if len(m) != benchSeries {
		b.Fatalf("result has %d series, want %d", len(m), benchSeries)
	}
}

// BenchmarkQueryCacheColdMiss is the baseline: the full windowed range
// evaluation plus the cache's store path, nothing reusable.
func BenchmarkQueryCacheColdMiss(b *testing.B) {
	env := newBenchEnv(b)
	end := env.last
	start := end - benchSteps*stepMs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.query(b, env.newCache(), start, end, OutcomeMiss)
	}
}

// BenchmarkQueryCacheHit measures an exact dashboard repeat: key lookup,
// validity check and the defensive deep clone of the result.
func BenchmarkQueryCacheHit(b *testing.B) {
	env := newBenchEnv(b)
	c := env.newCache()
	end := env.last
	start := end - benchSteps*stepMs
	env.query(b, c, start, end, OutcomeMiss)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.query(b, c, start, end, OutcomeHit)
	}
}

// BenchmarkQueryCacheSplice measures incremental refreshes: the window
// slides so a fraction of the cached entry is reused and only the
// uncovered steps re-evaluate. overlap99 is the production dashboard
// pattern the cache exists for (refresh after the head advanced a couple
// of scrapes); overlap80 is the stress point where a fifth of the window
// is new. The windows alternate forward and back so any b.N runs against
// fixed data.
func BenchmarkQueryCacheSplice(b *testing.B) {
	for _, bc := range []struct {
		name  string
		delta int64 // steps the window slides per refresh
	}{
		{"overlap99", 2},
		{"overlap95", 12},
		{"overlap80", 48},
	} {
		b.Run(bc.name, func(b *testing.B) {
			env := newBenchEnv(b)
			c := env.newCache()
			endA := env.last - bc.delta*stepMs
			endB := env.last
			startOf := func(end int64) int64 { return end - benchSteps*stepMs }
			env.query(b, c, startOf(endA), endA, OutcomeMiss)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				end := endA
				if i%2 == 0 {
					end = endB
				}
				env.query(b, c, startOf(end), end, OutcomeSplice)
			}
		})
	}
}
