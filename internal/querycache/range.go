package querycache

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/promql"
)

// RangeEval evaluates the query this lookup is for over a sub-window; the
// cache calls it with grid-aligned bounds and the original step. promapi
// passes a closure over Engine.RangeCtx.
type RangeEval func(ctx context.Context, start, end time.Time, step time.Duration) (promql.Matrix, error)

// InstantEval evaluates the query at its instant timestamp.
type InstantEval func(ctx context.Context) (promql.Value, error)

// headState is one consistent-enough snapshot of append progress. gen and
// epoch are read before the time bounds so a racing append can only make
// the snapshot look staler than it is, never fresher.
type headState struct {
	gen       uint64
	epoch     uint64
	pruned    int64
	hasPruned bool
	maxT      int64
}

func (c *Cache) snapshot() headState {
	h := c.opts.Head
	st := headState{gen: h.MutationGen(), epoch: h.AppendEpoch(), maxT: math.MinInt64}
	st.pruned, st.hasPruned = h.PrunedThrough()
	if maxT, ok := h.MaxTime(); ok {
		st.maxT = maxT
	}
	return st
}

// RangeQuery serves a range query through the cache. Repeats of a cached
// window are answered without evaluation; windows overlapping a cached
// entry re-evaluate only the uncovered steps via eval and splice them onto
// the cached part; everything else evaluates cold and is stored. The
// returned Matrix never shares sample or label slices with the cache.
func (c *Cache) RangeQuery(ctx context.Context, query string, start, end time.Time, step time.Duration, eval RangeEval) (promql.Matrix, Outcome, error) {
	if c == nil || c.opts.Head == nil || step <= 0 || start.After(end) {
		m, err := eval(ctx, start, end, step)
		return m, OutcomeBypass, err
	}
	expr, err := promql.ParseExprCached(query)
	if err != nil {
		// Let the evaluator produce its own (identical) parse error.
		m, err := eval(ctx, start, end, step)
		return m, OutcomeBypass, err
	}
	stepMs := model.DurationMillis(step)
	if stepMs <= 0 {
		// A sub-millisecond step truncates to 0 on the millisecond grid;
		// evaluate cold rather than divide by zero below.
		m, err := eval(ctx, start, end, step)
		return m, OutcomeBypass, err
	}
	var (
		startMs = model.TimeToMillis(start)
		endMs   = model.TimeToMillis(end)
		lastMs  = startMs + (endMs-startMs)/stepMs*stepMs // last grid step
		phase   = floorMod(startMs, stepMs)
		padMs   = maxPadMs(expr, c.opts.Lookback)
		key     = fmt.Sprintf("r\x00%s\x00%d\x00%d\x00%d", NormalizeQuery(query), stepMs, phase, padMs)
	)
	if steps := (endMs-startMs)/stepMs + 1; steps > c.maxSteps() {
		// Beyond the engine's step guardrail: evaluate cold so the request
		// gets the engine's own LimitError. Splicing here could assemble a
		// union window the engine would have refused to evaluate.
		m, err := eval(ctx, start, end, step)
		return m, OutcomeBypass, err
	}
	return c.rangeLookup(ctx, key, startMs, lastMs, stepMs, phase, padMs, start, end, step, eval, true)
}

// rangeLookup probes the cache once and serves the hit/splice/miss result.
// latch controls whether a full cold miss goes through the singleflight
// latch; the follower retry passes false so a failed leader cannot convoy
// followers behind one another forever.
func (c *Cache) rangeLookup(ctx context.Context, key string, startMs, lastMs, stepMs, phase, padMs int64, start, end time.Time, step time.Duration, eval RangeEval, latch bool) (promql.Matrix, Outcome, error) {
	st := c.snapshot()
	sh := c.shardFor(key)
	ent := sh.get(key)
	if ent != nil && ent.fillGen != st.gen {
		// A destructive mutation (DeleteSeries) ran since fill: any cached
		// step may now be wrong. Drop the entry.
		sh.remove(key, ent)
		c.invalidations.Add(1)
		ent = nil
	}
	if ent == nil {
		return c.rangeColdFlight(ctx, key, st, startMs, lastMs, stepMs, phase, padMs, start, end, step, eval, latch)
	}
	if ent.kind == kindNegative {
		// A cached limit error is replayed only when a cold evaluation
		// would provably fail identically: same window, no append past the
		// window since fill (appends never land strictly behind the
		// watermark, so a settled window's sample count cannot grow), and
		// retention has not reached into the window's read padding (pruning
		// can only SHRINK the count back under the limit). Gen mismatch was
		// already handled above, like every entry kind.
		switch {
		case ent.startMs != startMs || ent.lastMs != lastMs:
			// A different window under the same key: evaluate it, leave the
			// entry for repeats of the original window.
		case st.epoch != ent.fillEpoch && ent.lastMs >= c.settledBefore(ent.fillMax):
			sh.remove(key, ent)
			c.invalidations.Add(1)
		case st.hasPruned && startMs-padMs < st.pruned:
			sh.remove(key, ent)
			c.invalidations.Add(1)
		default:
			c.negHits.Add(1)
			return nil, OutcomeHit, ent.negErr
		}
		return c.rangeColdFlight(ctx, key, st, startMs, lastMs, stepMs, phase, padMs, start, end, step, eval, latch)
	}

	// Reusable sub-window of the cached grid.
	lo := max(startMs, ent.startMs)
	hi := min(lastMs, ent.lastMs)
	if st.epoch != ent.fillEpoch {
		// Samples landed since fill: only steps settled at fill time — read
		// window complete strictly below the fill watermark — are still
		// provably identical to a cold evaluation. The step AT the watermark
		// is never settled: appends can legally land at MaxTime itself (the
		// scrape pass commits synthetics in a second commit at the same
		// timestamp, and parallel targets can share a millisecond), so a fill
		// racing between two same-timestamp commits may have seen a partial
		// boundary step.
		if ent.fillMax == math.MinInt64 {
			// Filled against an empty head; nothing was settled.
			return c.rangeColdFlight(ctx, key, st, startMs, lastMs, stepMs, phase, padMs, start, end, step, eval, latch)
		}
		// settledBefore widens the mutable tail by the head's out-of-order
		// window: with the window on, appends may land up to window behind
		// the watermark, so only steps strictly below fillMax − window were
		// provably complete at fill.
		hi = min(hi, alignDown(c.settledBefore(ent.fillMax)-1, phase, stepMs))
	}
	if st.hasPruned {
		// Steps whose padded read window reaches below the pruned watermark
		// are trimmed: a cold evaluation may no longer see their data.
		lo = max(lo, alignUp(st.pruned+padMs, phase, stepMs))
	}
	if lo > hi {
		return c.rangeColdFlight(ctx, key, st, startMs, lastMs, stepMs, phase, padMs, start, end, step, eval, latch)
	}
	mid := extractRange(ent.matrix, lo, hi)
	if lo == startMs && hi == lastMs {
		c.hits.Add(1)
		return cloneMatrix(mid), OutcomeHit, nil
	}

	// Splice: evaluate only the uncovered head and tail of the grid.
	var headM, tailM promql.Matrix
	if startMs < lo {
		m, err := eval(ctx, model.MillisToTime(startMs), model.MillisToTime(lo-stepMs), step)
		if err != nil {
			return nil, OutcomeBypass, err
		}
		headM = m
	}
	if hi < lastMs {
		m, err := eval(ctx, model.MillisToTime(hi+stepMs), model.MillisToTime(lastMs), step)
		if err != nil {
			return nil, OutcomeBypass, err
		}
		tailM = m
	}
	out := spliceMerge(headM, cloneMatrix(mid), tailM)
	if c.opts.Paranoid {
		cold, err := eval(ctx, start, end, step)
		if err != nil {
			return nil, OutcomeBypass, err
		}
		if !EqualMatrix(out, cold) {
			c.spliceFails.Add(1)
			return nil, OutcomeBypass, fmt.Errorf(
				"querycache: spliced result differs from cold evaluation for key %q [%d..%d] step %dms", key, startMs, lastMs, stepMs)
		}
	}
	c.splices.Add(1)
	c.storeRange(key, st, out, startMs, lastMs, stepMs)
	return out, OutcomeSplice, nil
}

// rangeColdFlight funnels a full cold miss through the per-key latch: one
// leader evaluates and fills; followers park until it finishes, then retry
// the lookup once — which normally hits what the leader stored. A retry
// that still misses (leader errored, entry too large to store, fresh
// invalidation) evaluates unlatched rather than queueing behind a new
// leader.
func (c *Cache) rangeColdFlight(ctx context.Context, key string, st headState, startMs, lastMs, stepMs, phase, padMs int64, start, end time.Time, step time.Duration, eval RangeEval, latch bool) (promql.Matrix, Outcome, error) {
	if !latch {
		return c.rangeMiss(ctx, key, st, startMs, lastMs, stepMs, padMs, start, end, step, eval)
	}
	leader, f := c.flights.begin(key)
	if leader {
		defer c.flights.end(key)
		return c.rangeMiss(ctx, key, st, startMs, lastMs, stepMs, padMs, start, end, step, eval)
	}
	select {
	case <-f.done:
	case <-ctx.Done():
		return nil, OutcomeBypass, ctx.Err()
	}
	c.coalesced.Add(1)
	return c.rangeLookup(ctx, key, startMs, lastMs, stepMs, phase, padMs, start, end, step, eval, false)
}

// rangeMiss evaluates cold and stores the result — including a negative
// entry when the evaluation tripped an engine guardrail, so dashboard
// refreshes of an over-budget panel stop re-paying the full limit's worth
// of evaluation for the same 422.
func (c *Cache) rangeMiss(ctx context.Context, key string, st headState, startMs, lastMs, stepMs, padMs int64, start, end time.Time, step time.Duration, eval RangeEval) (promql.Matrix, Outcome, error) {
	m, err := eval(ctx, start, end, step)
	if err != nil {
		if promql.IsLimitError(err) {
			c.storeNegative(key, st, err, startMs, lastMs, stepMs, padMs)
		}
		return nil, OutcomeMiss, err
	}
	c.misses.Add(1)
	c.storeRange(key, st, m, startMs, lastMs, stepMs)
	return m, OutcomeMiss, nil
}

// storeNegative caches a limit error under the same key (and staleness
// contract) a positive result would use.
func (c *Cache) storeNegative(key string, st headState, err error, startMs, lastMs, stepMs, padMs int64) {
	e := &entry{
		key: key, kind: kindNegative,
		fillMax: st.maxT, fillEpoch: st.epoch, fillGen: st.gen,
		negErr: err, startMs: startMs, lastMs: lastMs, stepMs: stepMs, padMs: padMs,
		cost: int64(len(key)+len(err.Error())) + entryOverhead,
	}
	evicted, _ := c.shardFor(key).put(e)
	c.evictions.Add(uint64(evicted))
	c.negStores.Add(1)
}

// storeRange inserts a deep clone of m, so later caller mutations of the
// returned matrix cannot corrupt the entry.
func (c *Cache) storeRange(key string, st headState, m promql.Matrix, startMs, lastMs, stepMs int64) {
	snap := cloneMatrix(m)
	e := &entry{
		key: key, kind: kindRange,
		fillMax: st.maxT, fillEpoch: st.epoch, fillGen: st.gen,
		matrix: snap, startMs: startMs, lastMs: lastMs, stepMs: stepMs,
		cost: matrixCost(snap) + int64(len(key)),
	}
	evicted, _ := c.shardFor(key).put(e)
	c.evictions.Add(uint64(evicted))
}

// InstantQuery serves an instant query through the cache. Only Vector and
// Scalar results are cached; the returned value never shares slices with
// the cache.
func (c *Cache) InstantQuery(ctx context.Context, query string, ts time.Time, eval InstantEval) (promql.Value, Outcome, error) {
	if c == nil || c.opts.Head == nil {
		v, err := eval(ctx)
		return v, OutcomeBypass, err
	}
	expr, err := promql.ParseExprCached(query)
	if err != nil {
		v, err := eval(ctx)
		return v, OutcomeBypass, err
	}
	var (
		tsMs  = model.TimeToMillis(ts)
		padMs = maxPadMs(expr, c.opts.Lookback)
		key   = fmt.Sprintf("i\x00%s\x00%d\x00%d", NormalizeQuery(query), tsMs, padMs)
	)
	return c.instantLookup(ctx, key, tsMs, padMs, eval, true)
}

// instantLookup probes the cache once; cold evaluations go through the
// singleflight latch when latch is set (follower retries pass false, same
// discipline as rangeLookup).
func (c *Cache) instantLookup(ctx context.Context, key string, tsMs, padMs int64, eval InstantEval, latch bool) (promql.Value, Outcome, error) {
	st := c.snapshot()
	sh := c.shardFor(key)
	if ent := sh.get(key); ent != nil {
		switch {
		case ent.fillGen != st.gen:
			sh.remove(key, ent)
			c.invalidations.Add(1)
		case st.epoch != ent.fillEpoch && tsMs >= c.settledBefore(ent.fillMax):
			// The result was mutable at fill and the head has advanced:
			// re-evaluate. A timestamp AT the fill watermark counts as
			// mutable too — appends can land at MaxTime itself (same-ts
			// second commit, parallel targets sharing a millisecond). Keep
			// the entry; a repeat of the same timestamp after yet more
			// appends would fail the same test anyway, and the fresh fill
			// below replaces it.
		case st.hasPruned && tsMs-padMs < st.pruned:
			sh.remove(key, ent)
			c.invalidations.Add(1)
		default:
			if ent.kind == kindNegative {
				c.negHits.Add(1)
				return nil, OutcomeHit, ent.negErr
			}
			c.hits.Add(1)
			return cloneValue(ent.value), OutcomeHit, nil
		}
	}
	if latch {
		leader, f := c.flights.begin(key)
		if !leader {
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, OutcomeBypass, ctx.Err()
			}
			c.coalesced.Add(1)
			return c.instantLookup(ctx, key, tsMs, padMs, eval, false)
		}
		defer c.flights.end(key)
	}
	v, err := eval(ctx)
	if err != nil {
		if promql.IsLimitError(err) {
			c.storeNegative(key, st, err, tsMs, tsMs, 0, padMs)
		}
		return nil, OutcomeMiss, err
	}
	c.misses.Add(1)
	switch v.(type) {
	case promql.Vector, promql.Scalar:
		snap := cloneValue(v)
		e := &entry{
			key: key, kind: kindInstant,
			fillMax: st.maxT, fillEpoch: st.epoch, fillGen: st.gen,
			value: snap, cost: valueCost(snap) + int64(len(key)),
		}
		evicted, _ := sh.put(e)
		c.evictions.Add(uint64(evicted))
	}
	return v, OutcomeMiss, nil
}

// --- grid math ------------------------------------------------------------

func floorMod(a, m int64) int64 {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// alignDown returns the largest grid time (== phase mod step) <= t.
func alignDown(t, phase, step int64) int64 {
	return t - floorMod(t-phase, step)
}

// alignUp returns the smallest grid time (== phase mod step) >= t.
func alignUp(t, phase, step int64) int64 {
	if d := floorMod(t-phase, step); d != 0 {
		return t + step - d
	}
	return t
}

// maxPadMs returns how far below its evaluation time a step of expr reads:
// the maximum over selectors of offset + lookback (instant) or offset +
// range (matrix). It is part of the cache key — an engine with a different
// lookback must not share entries — and of the retention floor.
func maxPadMs(expr promql.Expr, lookback time.Duration) int64 {
	pad := model.DurationMillis(lookback)
	var add func(e promql.Expr)
	add = func(e promql.Expr) {
		switch t := e.(type) {
		case *promql.VectorSelector:
			if p := model.DurationMillis(t.Offset + lookback); p > pad {
				pad = p
			}
		case *promql.MatrixSelector:
			if p := model.DurationMillis(t.VS.Offset + t.Range); p > pad {
				pad = p
			}
		case *promql.ParenExpr:
			add(t.Expr)
		case *promql.UnaryExpr:
			add(t.Expr)
		case *promql.AggregateExpr:
			add(t.Expr)
			if t.Param != nil {
				add(t.Param)
			}
		case *promql.BinaryExpr:
			add(t.LHS)
			add(t.RHS)
		case *promql.Call:
			for _, a := range t.Args {
				add(a)
			}
		}
	}
	add(expr)
	return pad
}

// --- matrix splicing ------------------------------------------------------

// extractRange returns the sub-matrix of m with sample times in [lo, hi].
// Series left empty are dropped. Sample slices are sub-slices of m (no
// copy); callers that hand the result out clone it first. Range-query
// sample timestamps are always the step evaluation times (every evaluator
// path stamps T with the step time), so selecting by T selects whole steps.
func extractRange(m promql.Matrix, lo, hi int64) promql.Matrix {
	out := make(promql.Matrix, 0, len(m))
	for _, s := range m {
		a := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].T >= lo })
		b := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].T > hi })
		if a == b {
			continue
		}
		out = append(out, model.Series{Labels: s.Labels, Samples: s.Samples[a:b]})
	}
	return out
}

// spliceMerge concatenates per-series samples across matrices covering
// disjoint, increasing time windows, producing exactly what one cold
// evaluation of the union window produces: series union, samples in time
// order, sorted by labels.
func spliceMerge(parts ...promql.Matrix) promql.Matrix {
	acc := map[uint64]*model.Series{}
	var order []uint64
	for _, part := range parts {
		for _, s := range part {
			h := s.Labels.Hash()
			sr, ok := acc[h]
			if !ok {
				sr = &model.Series{Labels: s.Labels}
				acc[h] = sr
				order = append(order, h)
			}
			sr.Samples = append(sr.Samples, s.Samples...)
		}
	}
	out := make(promql.Matrix, 0, len(order))
	for _, h := range order {
		out = append(out, *acc[h])
	}
	sort.Slice(out, func(i, j int) bool { return labels.Compare(out[i].Labels, out[j].Labels) < 0 })
	return out
}

// cloneMatrix deep-copies a matrix via promql's cloning discipline.
func cloneMatrix(m promql.Matrix) promql.Matrix { return m.Clone() }

func cloneValue(v promql.Value) promql.Value {
	switch tv := v.(type) {
	case promql.Vector:
		return tv.Clone()
	case promql.Matrix:
		return tv.Clone()
	default: // Scalar, String: value types, already copies
		return v
	}
}

func valueCost(v promql.Value) int64 {
	switch tv := v.(type) {
	case promql.Vector:
		return vectorCost(tv)
	case promql.Matrix:
		return matrixCost(tv)
	default:
		return entryOverhead
	}
}

// EqualMatrix reports byte-for-byte equality of two matrices: same series
// in the same order, same labels, and per-sample identical timestamps and
// bit-identical values (NaNs with equal payloads compare equal, unlike ==).
func EqualMatrix(a, b promql.Matrix) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Labels.Equal(b[i].Labels) || len(a[i].Samples) != len(b[i].Samples) {
			return false
		}
		for j := range a[i].Samples {
			x, y := a[i].Samples[j], b[i].Samples[j]
			if x.T != y.T || math.Float64bits(x.V) != math.Float64bits(y.V) {
				return false
			}
		}
	}
	return true
}

// EqualValue is EqualMatrix's instant-vector counterpart.
func EqualValue(a, b promql.Value) bool {
	switch av := a.(type) {
	case promql.Vector:
		bv, ok := b.(promql.Vector)
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if !av[i].Labels.Equal(bv[i].Labels) || av[i].T != bv[i].T ||
				math.Float64bits(av[i].V) != math.Float64bits(bv[i].V) {
				return false
			}
		}
		return true
	case promql.Scalar:
		bv, ok := b.(promql.Scalar)
		return ok && av.T == bv.T && math.Float64bits(av.V) == math.Float64bits(bv.V)
	case promql.Matrix:
		bv, ok := b.(promql.Matrix)
		return ok && EqualMatrix(av, bv)
	}
	return false
}
