package querycache

import (
	"context"
	"testing"
	"time"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/promql"
	"repro/internal/tsdb"
)

// TestOOOWindowNotServedStale: with an out-of-order ingest window on the
// head, cached steps inside the window are still mutable — a late sample
// can land behind the fill watermark. The cache must widen its staleness
// horizon by the window (settledBefore) instead of serving those steps as
// settled history.
func TestOOOWindowNotServedStale(t *testing.T) {
	const window = 5 * stepMs
	db := tsdb.MustOpen(tsdb.Options{OutOfOrderWindow: window, Shards: 2})
	eng := promql.NewEngine()
	cache := New(Options{
		Head: db, MaxBytes: 1 << 22, Lookback: eng.LookbackDelta,
		MaxSteps: eng.MaxSteps, Paranoid: true,
	})
	if cache.oooWindow != window {
		t.Fatalf("cache did not pick up the head's window: %d", cache.oooWindow)
	}

	ls := labels.FromStrings(labels.MetricName, "ooo_m", "i", "0")
	now := int64(1_000_000_000)
	gap := now - 2*stepMs // this scrape goes missing; it arrives late below
	for ts := now - 40*stepMs; ts <= now; ts += stepMs {
		if ts == gap {
			continue
		}
		if err := db.Append(ls, ts, float64(ts/1000)); err != nil {
			t.Fatal(err)
		}
	}
	eval := func(ctx context.Context, s, e time.Time, st time.Duration) (promql.Matrix, error) {
		return eng.RangeCtx(ctx, db, "ooo_m", s, e, st)
	}
	run := func() (promql.Matrix, Outcome) {
		m, out, err := cache.RangeQuery(context.Background(), "ooo_m",
			model.MillisToTime(now-20*stepMs), model.MillisToTime(now),
			stepMs*time.Millisecond, eval)
		if err != nil {
			t.Fatal(err)
		}
		return m, out
	}

	first, _ := run()

	// The missing scrape arrives late — inside the window, two steps
	// behind the watermark — changing an already-cached step's value.
	if err := db.Append(ls, gap, 999_999); err != nil {
		t.Fatalf("in-window late append: %v", err)
	}

	got, out := run()
	if out == OutcomeHit {
		t.Fatal("in-window steps served as a pure hit after an OOO append")
	}
	if EqualMatrix(first, got) {
		t.Fatal("workload broken: late sample did not change the result")
	}
	want, err := eng.RangeCtx(context.Background(), db, "ooo_m",
		model.MillisToTime(now-20*stepMs), model.MillisToTime(now), stepMs*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualMatrix(got, want) {
		t.Fatalf("cached result differs from cold evaluation:\n got %v\nwant %v", got, want)
	}

	// Steps older than the window stay reusable: a repeat with no further
	// appends is provably current again.
	_, out = run()
	if out != OutcomeHit {
		t.Fatalf("repeat with unchanged epoch = %s, want hit", out)
	}
}
