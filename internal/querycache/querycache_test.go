package querycache

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/promql"
	"repro/internal/tsdb"
)

const stepMs = 15_000

// testEnv is one head + engine + cache with an eval-call ledger.
type testEnv struct {
	t     *testing.T
	db    *tsdb.DB
	eng   *promql.Engine
	cache *Cache
	now   int64 // last appended timestamp, ms

	mu        sync.Mutex
	evalCalls int
	evalSteps int // total steps the eval closure was asked to produce
}

func newEnv(t *testing.T, opts Options) *testEnv {
	t.Helper()
	env := &testEnv{
		t:   t,
		db:  tsdb.MustOpen(tsdb.Options{MaxSamplesPerChunk: 120, Shards: 4}),
		eng: promql.NewEngine(),
		now: 1_000_000_000,
	}
	opts.Head = env.db
	opts.Lookback = env.eng.LookbackDelta
	if opts.MaxBytes == 0 {
		opts.MaxBytes = 1 << 22
	}
	if opts.Shards == 0 {
		opts.Shards = 4
	}
	opts.Paranoid = true
	env.cache = New(opts)
	return env
}

// appendTick advances the head one scrape interval: every series gets one
// sample at the new watermark.
func (e *testEnv) appendTick() {
	e.now += stepMs
	for i := 0; i < 4; i++ {
		ls := labels.FromStrings(labels.MetricName, "m0", "i", fmt.Sprint(i))
		if err := e.db.Append(ls, e.now, float64(e.now/1000+int64(i))); err != nil {
			e.t.Fatal(err)
		}
		cs := labels.FromStrings(labels.MetricName, "m1", "i", fmt.Sprint(i))
		if err := e.db.Append(cs, e.now, float64(e.now/100)); err != nil {
			e.t.Fatal(err)
		}
	}
}

func (e *testEnv) fill(ticks int) {
	for i := 0; i < ticks; i++ {
		e.appendTick()
	}
}

func (e *testEnv) eval(query string) RangeEval {
	return func(ctx context.Context, s, end time.Time, st time.Duration) (promql.Matrix, error) {
		e.mu.Lock()
		e.evalCalls++
		e.evalSteps += int(end.Sub(s)/st) + 1
		e.mu.Unlock()
		return e.eng.RangeCtx(ctx, e.db, query, s, end, st)
	}
}

func (e *testEnv) rangeQuery(query string, startMs, endMs int64) (promql.Matrix, Outcome) {
	e.t.Helper()
	m, out, err := e.cache.RangeQuery(context.Background(), query,
		model.MillisToTime(startMs), model.MillisToTime(endMs), stepMs*time.Millisecond, e.eval(query))
	if err != nil {
		e.t.Fatalf("RangeQuery(%s): %v", query, err)
	}
	return m, out
}

func (e *testEnv) cold(query string, startMs, endMs int64) promql.Matrix {
	e.t.Helper()
	m, err := e.eng.RangeCtx(context.Background(), e.db, query,
		model.MillisToTime(startMs), model.MillisToTime(endMs), stepMs*time.Millisecond)
	if err != nil {
		e.t.Fatal(err)
	}
	return m
}

func (e *testEnv) mustEqualCold(query string, startMs, endMs int64, got promql.Matrix) {
	e.t.Helper()
	if want := e.cold(query, startMs, endMs); !EqualMatrix(got, want) {
		e.t.Fatalf("cached result differs from cold evaluation for %s [%d..%d]:\n got %v\nwant %v",
			query, startMs, endMs, got, want)
	}
}

func TestExactRepeatIsHit(t *testing.T) {
	env := newEnv(t, Options{})
	env.fill(40)
	start, end := env.now-20*stepMs, env.now

	m1, out1 := env.rangeQuery("sum by (i) (m0)", start, end)
	if out1 != OutcomeMiss {
		t.Fatalf("first lookup = %s, want miss", out1)
	}
	if len(m1) == 0 {
		t.Fatal("empty result; test workload broken")
	}
	callsAfterFill := env.evalCalls
	m2, out2 := env.rangeQuery("sum by (i) (m0)", start, end)
	if out2 != OutcomeHit {
		t.Fatalf("repeat lookup = %s, want hit", out2)
	}
	if env.evalCalls != callsAfterFill {
		t.Fatalf("hit ran %d extra evaluations", env.evalCalls-callsAfterFill)
	}
	if !EqualMatrix(m1, m2) {
		t.Fatal("hit returned different result than fill")
	}
	env.mustEqualCold("sum by (i) (m0)", start, end, m2)
	if st := env.cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestSpliceEvaluatesOnlyTheDelta(t *testing.T) {
	env := newEnv(t, Options{})
	env.fill(200)
	const q = "rate(m1[1m])"
	const window = 100 // steps

	start, end := env.now-window*stepMs, env.now
	env.rangeQuery(q, start, end)

	// Dashboard refresh: the head advanced 5 scrapes, the window slid with
	// it — 95% overlap with the cached entry.
	env.fill(5)
	env.mu.Lock()
	env.evalSteps = 0
	env.mu.Unlock()
	start, end = env.now-window*stepMs, env.now
	got, out := env.rangeQuery(q, start, end)
	if out != OutcomeSplice {
		t.Fatalf("overlapping refresh = %s, want splice", out)
	}
	env.mustEqualCold(q, start, end, got)
	// Paranoid mode re-runs the full cold evaluation (window+1 steps); the
	// incremental part is everything beyond that. The head moved 5 steps
	// and the last cached step was mutable at fill, so ~6 steps re-run.
	env.mu.Lock()
	delta := env.evalSteps - (window + 1)
	env.mu.Unlock()
	if delta > 8 {
		t.Fatalf("splice re-evaluated %d steps, want <= 8", delta)
	}
	if st := env.cache.Stats(); st.Splices != 1 {
		t.Fatalf("stats = %+v, want 1 splice", st)
	}
}

func TestMutableTailNeverServedStale(t *testing.T) {
	env := newEnv(t, Options{})
	env.fill(40)
	const q = "m0"
	// Window extends one step beyond the watermark: that last step was
	// still mutable when the entry filled.
	start, end := env.now-10*stepMs, env.now+stepMs
	first, _ := env.rangeQuery(q, start, end)

	// The scrape that was pending arrives; the last step's value changes.
	// A repeat of the identical window must reflect it.
	env.appendTick()
	got, out := env.rangeQuery(q, start, end)
	if out == OutcomeHit {
		t.Fatal("mutable tail served as pure hit after the head advanced")
	}
	if EqualMatrix(first, got) {
		t.Fatal("test workload broken: new scrape did not change the last step")
	}
	env.mustEqualCold(q, start, end, got)
}

func TestEpochUnchangedServesMutableSteps(t *testing.T) {
	env := newEnv(t, Options{})
	env.fill(40)
	start, end := env.now-10*stepMs, env.now+5*stepMs // tail entirely mutable
	env.rangeQuery("m0", start, end)
	// Nothing appended since fill: the whole entry, mutable steps included,
	// is provably current.
	_, out := env.rangeQuery("m0", start, end)
	if out != OutcomeHit {
		t.Fatalf("repeat with unchanged epoch = %s, want hit", out)
	}
}

func TestDeleteSeriesInvalidates(t *testing.T) {
	env := newEnv(t, Options{})
	env.fill(40)
	start, end := env.now-20*stepMs, env.now
	env.rangeQuery("m0", start, end)

	env.db.DeleteSeries(labels.MustMatcher(labels.MatchEqual, "i", "2"))
	got, out := env.rangeQuery("m0", start, end)
	if out == OutcomeHit || out == OutcomeSplice {
		t.Fatalf("post-delete lookup = %s, want full miss", out)
	}
	for _, s := range got {
		if s.Labels.Get("i") == "2" {
			t.Fatal("deleted series served from cache")
		}
	}
	env.mustEqualCold("m0", start, end, got)
	if st := env.cache.Stats(); st.Invalidations == 0 {
		t.Fatalf("stats = %+v, want an invalidation", st)
	}
}

func TestRetentionTrimsCachedSteps(t *testing.T) {
	env := newEnv(t, Options{})
	env.fill(200)
	start, end := env.now-180*stepMs, env.now
	env.rangeQuery("m0", start, end)

	// Prune everything older than 20 steps; most of the cached window's
	// read windows now dip below MinTime.
	env.db.Truncate(env.now - 20*stepMs)
	got, out := env.rangeQuery("m0", start, end)
	if out == OutcomeHit {
		t.Fatal("window overlapping pruned data served as pure hit")
	}
	env.mustEqualCold("m0", start, end, got)
}

// TestMutationAfterReturn is the immutable-snapshot regression test: a
// caller scribbling over a returned result — samples and labels alike —
// must not corrupt the cached entry.
func TestMutationAfterReturn(t *testing.T) {
	env := newEnv(t, Options{})
	env.fill(40)
	start, end := env.now-20*stepMs, env.now
	const q = "sum by (i) (m0)"

	first, _ := env.rangeQuery(q, start, end)
	pristine := first.Clone()
	for i := range first {
		for j := range first[i].Samples {
			first[i].Samples[j].V = -12345
			first[i].Samples[j].T = 1
		}
		for j := range first[i].Labels {
			first[i].Labels[j].Value = "corrupted"
		}
	}
	got, out := env.rangeQuery(q, start, end)
	if out != OutcomeHit {
		t.Fatalf("repeat = %s, want hit", out)
	}
	if !EqualMatrix(got, pristine) {
		t.Fatalf("cached entry corrupted by caller mutation:\n got %v\nwant %v", got, pristine)
	}

	// Same discipline on the instant side.
	ts := model.MillisToTime(env.now)
	iv, _, err := env.cache.InstantQuery(context.Background(), "m0", ts, func(ctx context.Context) (promql.Value, error) {
		return env.eng.InstantCtx(ctx, env.db, "m0", ts)
	})
	if err != nil {
		t.Fatal(err)
	}
	vec := iv.(promql.Vector)
	want := vec.Clone()
	for i := range vec {
		vec[i].V = -1
		vec[i].Labels[0].Value = "corrupted"
	}
	iv2, out2, err := env.cache.InstantQuery(context.Background(), "m0", ts, func(ctx context.Context) (promql.Value, error) {
		return env.eng.InstantCtx(ctx, env.db, "m0", ts)
	})
	if err != nil {
		t.Fatal(err)
	}
	if out2 != OutcomeHit {
		t.Fatalf("instant repeat = %s, want hit", out2)
	}
	if !EqualValue(iv2, promql.Value(want)) {
		t.Fatal("cached instant entry corrupted by caller mutation")
	}
}

func TestInstantHitAndStaleness(t *testing.T) {
	env := newEnv(t, Options{})
	env.fill(40)
	ctx := context.Background()
	eval := func(ctx context.Context) (promql.Value, error) {
		return env.eng.InstantCtx(ctx, env.db, "sum(m0)", model.MillisToTime(env.now+stepMs))
	}
	tsFuture := model.MillisToTime(env.now + stepMs) // beyond the watermark

	if _, out, err := env.cache.InstantQuery(ctx, "sum(m0)", tsFuture, eval); err != nil || out != OutcomeMiss {
		t.Fatalf("first = %s (%v), want miss", out, err)
	}
	// Epoch unchanged: even a mutable timestamp repeats as a hit.
	if _, out, _ := env.cache.InstantQuery(ctx, "sum(m0)", tsFuture, eval); out != OutcomeHit {
		t.Fatalf("repeat = %s, want hit", out)
	}
	// The head advances past the timestamp: the cached value is now for a
	// window that was mutable at fill — never served.
	env.appendTick()
	v, out, err := env.cache.InstantQuery(ctx, "sum(m0)", tsFuture, eval)
	if err != nil {
		t.Fatal(err)
	}
	if out == OutcomeHit {
		t.Fatal("mutable instant result served after head advanced")
	}
	want, _ := eval(ctx)
	if !EqualValue(v, want) {
		t.Fatalf("instant result stale: got %v want %v", v, want)
	}
	// That re-evaluation refilled the entry with the timestamp AT the new
	// watermark — still mutable, since appends can legally land at MaxTime
	// itself (same-ts second commit, parallel targets). Another append must
	// re-evaluate again, not hit.
	env.appendTick()
	v2, out2, err := env.cache.InstantQuery(ctx, "sum(m0)", tsFuture, eval)
	if err != nil {
		t.Fatal(err)
	}
	if out2 == OutcomeHit {
		t.Fatal("watermark-coincident instant result served as hit after head advanced")
	}
	if want, _ := eval(ctx); !EqualValue(v2, want) {
		t.Fatalf("instant result stale: got %v want %v", v2, want)
	}
	// This refill saw the head strictly past the timestamp: now settled, so
	// hits survive further appends.
	env.appendTick()
	if _, out, _ := env.cache.InstantQuery(ctx, "sum(m0)", tsFuture, eval); out != OutcomeHit {
		t.Fatalf("settled repeat = %s, want hit", out)
	}
}

// TestSameTimestampAppendAtWatermark is the regression test for the
// watermark off-by-one: the scrape pipeline commits metric samples and then
// the up/scrape_duration synthetics at the SAME timestamp (and parallel
// targets can share a millisecond), so a cache fill can land between two
// commits carrying equal timestamps. The boundary step — cached while only
// the first commit was visible — must never be served settled afterwards.
func TestSameTimestampAppendAtWatermark(t *testing.T) {
	env := newEnv(t, Options{})
	env.fill(40)
	const q = "m0"
	ts := env.now + stepMs

	// First commit of the scrape pass: half the series land at ts; ts is
	// now the global watermark.
	for i := 0; i < 2; i++ {
		ls := labels.FromStrings(labels.MetricName, "m0", "i", fmt.Sprint(i))
		if err := env.db.Append(ls, ts, 1.0); err != nil {
			t.Fatal(err)
		}
	}
	// Cache fill races in between the two commits: the boundary step at ts
	// sees only the first commit's samples.
	start, end := env.now-10*stepMs, ts
	first, _ := env.rangeQuery(q, start, end)

	// Second commit of the same pass: the remaining series land AT the
	// watermark.
	for i := 2; i < 4; i++ {
		ls := labels.FromStrings(labels.MetricName, "m0", "i", fmt.Sprint(i))
		if err := env.db.Append(ls, ts, 2.0); err != nil {
			t.Fatal(err)
		}
	}
	got, out := env.rangeQuery(q, start, end)
	if out == OutcomeHit {
		t.Fatal("boundary step cached between same-timestamp commits served as pure hit")
	}
	if EqualMatrix(first, got) {
		t.Fatal("test workload broken: second commit did not change the boundary step")
	}
	env.mustEqualCold(q, start, end, got)

	// The splice above re-stored the entry under the new epoch; the
	// boundary step it carries is now genuinely complete, so a repeat is a
	// hit — and still byte-identical to cold.
	again, out2 := env.rangeQuery(q, start, end)
	if out2 != OutcomeHit {
		t.Fatalf("repeat after splice = %s, want hit", out2)
	}
	env.mustEqualCold(q, start, end, again)

	// Instant side of the same race.
	env.now = ts // the manual commits above moved the watermark one step
	env.fill(2)
	its := env.now + stepMs
	ls := labels.FromStrings(labels.MetricName, "m0", "i", "0")
	if err := env.db.Append(ls, its, 5.0); err != nil {
		t.Fatal(err)
	}
	ieval := func(ctx context.Context) (promql.Value, error) {
		return env.eng.InstantCtx(ctx, env.db, "sum(m0)", model.MillisToTime(its))
	}
	ctx := context.Background()
	if _, _, err := env.cache.InstantQuery(ctx, "sum(m0)", model.MillisToTime(its), ieval); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		ls := labels.FromStrings(labels.MetricName, "m0", "i", fmt.Sprint(i))
		if err := env.db.Append(ls, its, 5.0); err != nil {
			t.Fatal(err)
		}
	}
	v, iout, err := env.cache.InstantQuery(ctx, "sum(m0)", model.MillisToTime(its), ieval)
	if err != nil {
		t.Fatal(err)
	}
	if iout == OutcomeHit {
		t.Fatal("watermark-coincident instant entry served after same-timestamp append")
	}
	if want, _ := ieval(ctx); !EqualValue(v, want) {
		t.Fatalf("instant result stale after same-ts append: got %v want %v", v, want)
	}
}

func TestNormalizationSharesEntries(t *testing.T) {
	env := newEnv(t, Options{})
	env.fill(40)
	start, end := env.now-10*stepMs, env.now
	env.rangeQuery("sum by (i) (m0)", start, end)
	_, out := env.rangeQuery("sum   by (i)    ( m0 )", start, end)
	if out != OutcomeHit {
		t.Fatalf("formatting variant = %s, want hit (normalization failed)", out)
	}
	// A semantically different query must not collide.
	got, out2 := env.rangeQuery(`sum by (i) (m0{i="1"})`, start, end)
	if out2 == OutcomeHit {
		t.Fatal("different query served from another query's entry")
	}
	env.mustEqualCold(`sum by (i) (m0{i="1"})`, start, end, got)
}

func TestEvictionKeepsBudget(t *testing.T) {
	env := newEnv(t, Options{MaxBytes: 16 << 10, Shards: 2})
	env.fill(120)
	for i := 0; i < 40; i++ {
		q := fmt.Sprintf(`sum by (i) (m0) + %d`, i)
		start := env.now - int64(40+i)*stepMs
		got, _ := env.rangeQuery(q, start, env.now)
		env.mustEqualCold(q, start, env.now, got)
	}
	st := env.cache.Stats()
	if st.Bytes > st.MaxBytes {
		t.Fatalf("cache over budget: %d > %d", st.Bytes, st.MaxBytes)
	}
	if st.Evictions == 0 {
		t.Fatalf("stats = %+v, want evictions under a tiny budget", st)
	}
}

func TestBlobTTL(t *testing.T) {
	now := time.Unix(1000, 0)
	c := New(Options{Clock: func() time.Time { return now }})
	c.PutBlob("k", []byte("payload"), 10*time.Second)
	if b, ok := c.GetBlob("k"); !ok || string(b) != "payload" {
		t.Fatalf("GetBlob = %q, %v", b, ok)
	}
	now = now.Add(11 * time.Second)
	if _, ok := c.GetBlob("k"); ok {
		t.Fatal("expired blob served")
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Fatalf("stats = %+v, want 1 invalidation", st)
	}
	// No-TTL blobs persist.
	c.PutBlob("k2", []byte("x"), 0)
	now = now.Add(24 * time.Hour)
	if _, ok := c.GetBlob("k2"); !ok {
		t.Fatal("no-TTL blob expired")
	}
}

func TestDegenerateRequestsBypass(t *testing.T) {
	env := newEnv(t, Options{})
	env.fill(40)
	start, end := model.MillisToTime(env.now-10*stepMs), model.MillisToTime(env.now)
	eval := func(ctx context.Context, s, e time.Time, st time.Duration) (promql.Matrix, error) {
		return env.eng.RangeCtx(ctx, env.db, "m0", s, e, st)
	}
	// Sub-millisecond step: truncates to 0 on the ms grid; must evaluate
	// cold, not divide by zero.
	narrow := model.MillisToTime(env.now - 1000)
	if _, out, err := env.cache.RangeQuery(context.Background(), "m0", narrow, end, 500*time.Microsecond, eval); err != nil || out != OutcomeBypass {
		t.Fatalf("sub-ms step: outcome %s, err %v", out, err)
	}
	// Requests beyond the engine's step guardrail bypass so the engine's
	// own LimitError fires instead of a splice assembling a refused window.
	wide := model.MillisToTime(env.now + int64(env.eng.MaxSteps+10)*stepMs)
	_, out, err := env.cache.RangeQuery(context.Background(), "m0", start, wide, stepMs*time.Millisecond, eval)
	if out != OutcomeBypass || !promql.IsLimitError(err) {
		t.Fatalf("oversized range: outcome %s, err %v; want bypass + LimitError", out, err)
	}
}

func TestConcurrentMixedAccess(t *testing.T) {
	env := newEnv(t, Options{})
	env.fill(80)
	queries := []string{"m0", "sum by (i) (m0)", "rate(m1[1m])", "m0 + m0"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := queries[(g+i)%len(queries)]
				start := env.now - int64(10+(g+i)%30)*stepMs
				m, _, err := env.cache.RangeQuery(context.Background(), q,
					model.MillisToTime(start), model.MillisToTime(env.now), stepMs*time.Millisecond,
					func(ctx context.Context, s, e time.Time, st time.Duration) (promql.Matrix, error) {
						return env.eng.RangeCtx(ctx, env.db, q, s, e, st)
					})
				if err != nil {
					t.Errorf("RangeQuery: %v", err)
					return
				}
				if len(m) == 0 {
					t.Error("empty result")
					return
				}
				env.cache.PutBlob(fmt.Sprint("g", g), []byte("x"), time.Minute)
				env.cache.GetBlob(fmt.Sprint("g", (g+1)%8))
			}
		}()
	}
	wg.Wait()
}
