package querycache

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/promql"
	"repro/internal/tsdb"
)

// TestSpliceCorrectnessProperty is the splice-correctness property test:
// random sequences of (append progress, window, step, query) — with series
// deletions and retention pruning mixed in — must produce, through the
// cache, results byte-identical to a cold evaluation oracle. Paranoid mode
// is on, so every splice is additionally self-verified inside the cache.
// The CI querycache job runs this under -race -count=2.
func TestSpliceCorrectnessProperty(t *testing.T) {
	trials, ops := 10, 150
	if testing.Short() {
		trials, ops = 3, 60
	}
	queries := []string{
		"p0",
		`p0{i="1"}`,
		"sum by (i) (p0)",
		"rate(p1[1m])",
		"sum(rate(p1[2m]))",
		"p0 + ignoring(i) group_left sum(p0)",
		"max_over_time(p0[45s])",
		"p0 > 0",
	}
	stepChoices := []int64{15_000, 30_000, 60_000}

	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)*7919 + 17))
			db := tsdb.MustOpen(tsdb.Options{MaxSamplesPerChunk: 60, Shards: 1 << rng.Intn(3)})
			eng := promql.NewEngine()
			cache := New(Options{
				MaxBytes: 1 << 21, Shards: 4,
				Head: db, Lookback: eng.LookbackDelta, Paranoid: true,
			})
			ctx := context.Background()

			now := int64(1_000_000_000)
			const tick = 15_000
			nSeries := 3 + rng.Intn(4)
			// Stragglers model the scrape pipeline's same-timestamp second
			// commit (and parallel targets sharing a millisecond): some
			// series hold their sample back and land it AT the current
			// watermark in a later op, with cache fills racing in between.
			type straggler struct {
				ls labels.Labels
				v  float64
			}
			var stragglers []straggler
			flushStragglers := func() {
				for _, s := range stragglers {
					if err := db.Append(s.ls, now, s.v); err != nil {
						t.Fatal(err)
					}
				}
				stragglers = stragglers[:0]
			}
			appendTick := func() {
				// Unflushed stragglers from the previous tick land first, so
				// appends never go strictly behind the watermark.
				flushStragglers()
				now += tick
				for i := 0; i < nSeries; i++ {
					// Series occasionally skip a scrape, so lookback gaps and
					// per-series raggedness are exercised; the global
					// watermark still only moves forward.
					if rng.Float64() < 0.08 {
						continue
					}
					g := labels.FromStrings(labels.MetricName, "p0", "i", fmt.Sprint(i))
					if rng.Float64() < 0.15 {
						stragglers = append(stragglers, straggler{g, float64(rng.Intn(1000)) - 200})
					} else if err := db.Append(g, now, float64(rng.Intn(1000))-200); err != nil {
						t.Fatal(err)
					}
					c := labels.FromStrings(labels.MetricName, "p1", "i", fmt.Sprint(i))
					if err := db.Append(c, now, float64(now/100+int64(i))); err != nil {
						t.Fatal(err)
					}
				}
			}
			for i := 0; i < 50; i++ {
				appendTick()
			}

			for op := 0; op < ops; op++ {
				switch r := rng.Float64(); {
				case r < 0.35: // head advances a few scrapes
					for i := 0; i < 1+rng.Intn(5); i++ {
						appendTick()
					}
				case r < 0.38: // same-timestamp second commit at the watermark
					flushStragglers()
				case r < 0.40 && op > 10: // destructive mutation
					db.DeleteSeries(labels.MustMatcher(labels.MatchEqual, "i", fmt.Sprint(rng.Intn(nSeries))))
				case r < 0.45: // retention pruning
					db.Truncate(now - int64(20+rng.Intn(40))*tick)
				case r < 0.90: // range query vs cold oracle
					q := queries[rng.Intn(len(queries))]
					step := stepChoices[rng.Intn(len(stepChoices))]
					endMs := now + int64(rng.Intn(5)-2)*tick // sometimes past the watermark
					startMs := endMs - int64(5+rng.Intn(40))*step
					start, end := model.MillisToTime(startMs), model.MillisToTime(endMs)
					stepDur := time.Duration(step) * time.Millisecond
					got, outcome, err := cache.RangeQuery(ctx, q, start, end, stepDur,
						func(ctx context.Context, s, e time.Time, st time.Duration) (promql.Matrix, error) {
							return eng.RangeCtx(ctx, db, q, s, e, st)
						})
					if err != nil {
						t.Fatalf("op %d: RangeQuery(%s) [%s]: %v", op, q, outcome, err)
					}
					want, err := eng.RangeCtx(ctx, db, q, start, end, stepDur)
					if err != nil {
						t.Fatalf("op %d: oracle: %v", op, err)
					}
					if !EqualMatrix(got, want) {
						t.Fatalf("op %d: %s over [%d..%d] step %d (%s) diverged from cold oracle:\n got %v\nwant %v",
							op, q, startMs, endMs, step, outcome, got, want)
					}
				default: // instant query vs cold oracle
					q := queries[rng.Intn(len(queries))]
					tsMs := now + int64(rng.Intn(3)-1)*tick
					ts := model.MillisToTime(tsMs)
					got, _, err := cache.InstantQuery(ctx, q, ts, func(ctx context.Context) (promql.Value, error) {
						return eng.InstantCtx(ctx, db, q, ts)
					})
					if err != nil {
						t.Fatalf("op %d: InstantQuery(%s): %v", op, q, err)
					}
					want, err := eng.InstantCtx(ctx, db, q, ts)
					if err != nil {
						t.Fatalf("op %d: instant oracle: %v", op, err)
					}
					if !EqualValue(got, want) {
						t.Fatalf("op %d: instant %s at %d diverged:\n got %v\nwant %v", op, q, tsMs, got, want)
					}
				}
			}
			st := cache.Stats()
			if st.SpliceFails != 0 {
				t.Fatalf("paranoid verification failed %d times", st.SpliceFails)
			}
			if st.Hits+st.Splices == 0 {
				t.Fatalf("property run never reused the cache (stats %+v); workload too cold to prove anything", st)
			}
		})
	}
}
