package querycache

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/promql"
)

// limitEval returns a RangeEval that always fails with a LimitError and
// counts how often it was actually invoked.
func limitEval(calls *atomic.Int64) RangeEval {
	return func(ctx context.Context, s, e time.Time, st time.Duration) (promql.Matrix, error) {
		calls.Add(1)
		return nil, &promql.LimitError{Msg: "query processing would load too many samples"}
	}
}

// TestNegativeRangeCached: a range query that trips an engine guardrail is
// cached as a negative entry — the repeat replays the same 422 without
// re-paying the evaluation that produced it.
func TestNegativeRangeCached(t *testing.T) {
	env := newEnv(t, Options{})
	env.fill(40)
	start, end := env.now-20*stepMs, env.now
	var calls atomic.Int64

	_, out, err := env.cache.RangeQuery(context.Background(), "sum(m0)",
		model.MillisToTime(start), model.MillisToTime(end), stepMs*time.Millisecond, limitEval(&calls))
	if out != OutcomeMiss || !promql.IsLimitError(err) {
		t.Fatalf("first lookup: outcome %s, err %v; want miss + LimitError", out, err)
	}
	firstErr := err

	_, out, err = env.cache.RangeQuery(context.Background(), "sum(m0)",
		model.MillisToTime(start), model.MillisToTime(end), stepMs*time.Millisecond, limitEval(&calls))
	if out != OutcomeHit || !errors.Is(err, firstErr) {
		t.Fatalf("repeat lookup: outcome %s, err %v; want hit replaying the cached error", out, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("eval ran %d times, want 1 (the repeat must not re-evaluate)", calls.Load())
	}
	if st := env.cache.Stats(); st.NegStores != 1 || st.NegHits != 1 {
		t.Fatalf("stats = %+v, want 1 negStore / 1 negHit", st)
	}
}

// TestNegativeRangeWindowMismatch: a different window under the same key
// must NOT replay the cached error — a narrower request may well fit the
// budget.
func TestNegativeRangeWindowMismatch(t *testing.T) {
	env := newEnv(t, Options{})
	env.fill(40)
	start, end := env.now-20*stepMs, env.now
	var calls atomic.Int64

	if _, _, err := env.cache.RangeQuery(context.Background(), "sum(m0)",
		model.MillisToTime(start), model.MillisToTime(end), stepMs*time.Millisecond, limitEval(&calls)); !promql.IsLimitError(err) {
		t.Fatalf("fill err = %v, want LimitError", err)
	}
	// Same query, step and phase — same key — but a narrower window that
	// succeeds. It must evaluate, not inherit the 422.
	m, out := env.rangeQuery("sum(m0)", start+10*stepMs, end)
	if out != OutcomeMiss || len(m) == 0 {
		t.Fatalf("narrower window: outcome %s, %d series; want a real miss evaluation", out, len(m))
	}
	env.mustEqualCold("sum(m0)", start+10*stepMs, end, m)
}

// TestNegativeRangeInvalidation: the negative entry lives under the same
// staleness contract as a positive one — an append past the window's end
// (the result could legitimately change) or a series delete drops it.
func TestNegativeRangeInvalidation(t *testing.T) {
	env := newEnv(t, Options{})
	env.fill(40)
	start, end := env.now-20*stepMs, env.now // window ends AT the watermark
	var calls atomic.Int64
	q := func() error {
		_, _, err := env.cache.RangeQuery(context.Background(), "sum(m0)",
			model.MillisToTime(start), model.MillisToTime(end), stepMs*time.Millisecond, limitEval(&calls))
		return err
	}

	if err := q(); !promql.IsLimitError(err) {
		t.Fatalf("fill err = %v, want LimitError", err)
	}
	env.appendTick() // head advances past the cached window's mutable tail
	if err := q(); !promql.IsLimitError(err) {
		t.Fatal("re-evaluation should have produced the error again")
	}
	if calls.Load() != 2 {
		t.Fatalf("eval ran %d times, want 2 (append must invalidate the negative entry)", calls.Load())
	}

	// A destructive mutation invalidates it too, via the shared gen check.
	if err := q(); calls.Load() != 2 || !promql.IsLimitError(err) {
		t.Fatalf("pre-delete repeat re-evaluated (calls=%d, err=%v)", calls.Load(), err)
	}
	env.db.DeleteSeries(labels.MustMatcher(labels.MatchEqual, "i", "3"))
	if err := q(); calls.Load() != 3 || !promql.IsLimitError(err) {
		t.Fatalf("post-delete lookup: calls=%d err=%v, want a fresh evaluation", calls.Load(), err)
	}
}

// TestNegativeInstantCached: the instant path caches and replays limit
// errors with the same watermark-advance invalidation as instant values.
func TestNegativeInstantCached(t *testing.T) {
	env := newEnv(t, Options{})
	env.fill(40)
	ts := model.MillisToTime(env.now)
	var calls atomic.Int64
	eval := func(ctx context.Context) (promql.Value, error) {
		calls.Add(1)
		return nil, &promql.LimitError{Msg: "too many samples"}
	}

	_, out, err := env.cache.InstantQuery(context.Background(), "sum(m0)", ts, eval)
	if out != OutcomeMiss || !promql.IsLimitError(err) {
		t.Fatalf("first lookup: outcome %s, err %v; want miss + LimitError", out, err)
	}
	_, out, err = env.cache.InstantQuery(context.Background(), "sum(m0)", ts, eval)
	if out != OutcomeHit || !promql.IsLimitError(err) || calls.Load() != 1 {
		t.Fatalf("repeat: outcome %s, err %v, calls %d; want hit replay with no evaluation", out, err, calls.Load())
	}

	env.appendTick() // ts >= fillMax and the epoch moved: re-evaluate
	if _, _, err := env.cache.InstantQuery(context.Background(), "sum(m0)", ts, eval); !promql.IsLimitError(err) {
		t.Fatal("re-evaluation should have produced the error again")
	}
	if calls.Load() != 2 {
		t.Fatalf("eval ran %d times, want 2 (append past the watermark invalidates)", calls.Load())
	}
	if st := env.cache.Stats(); st.NegStores != 2 || st.NegHits != 1 {
		t.Fatalf("stats = %+v, want 2 negStores / 1 negHit", st)
	}
}
