// Package querycache is the query-result cache shared by the promapi front
// end and the CEEMS load balancer. Grafana dashboards re-issue the same
// PromQL range queries every refresh against a head that advanced only a
// few scrape intervals; this package turns that repeat traffic from
// O(window) re-evaluation into O(1) lookups (exact repeats) or O(delta)
// incremental work (overlapping windows, see RangeQuery's splice path).
//
// # Structure
//
// The cache is lock-striped like the TSDB head: a power-of-two number of
// shards, each an independent mutex + map + cost-based LRU list, with
// entries routed by FNV-1a hash of their key. The total byte budget is
// divided evenly across shards; inserting over budget evicts from that
// shard's LRU tail. Three entry kinds share the striping:
//
//   - range entries: immutable promql.Matrix results on a step grid,
//     reusable incrementally (RangeQuery),
//   - instant entries: immutable promql.Vector / Scalar results
//     (InstantQuery),
//   - blob entries: opaque byte payloads with TTL expiry (GetBlob/PutBlob)
//     — the fallback the LB uses for response bodies it cannot interpret
//     structurally.
//
// # Staleness contract
//
// PromQL entries record the head's append progress at fill time: the
// MaxTime watermark, the AppendEpoch sample counter and the MutationGen
// destructive-op counter (see Head). A cached step at time t is served
// only when it is provably unchanged:
//
//   - gen mismatch (a DeleteSeries ran): the entry is dropped entirely;
//   - epoch unchanged (no sample landed since fill): every cached step is
//     valid, including steps that were still mutable at fill;
//   - epoch advanced: only steps with t strictly below the fill-time
//     MaxTime are served — their read windows were complete when
//     evaluated. The step AT the watermark is mutable: appends can land at
//     MaxTime itself (the scrape pass commits metric samples and then
//     synthetics at the same timestamp, and parallel targets can share a
//     millisecond), so a fill racing between two same-timestamp commits
//     may hold a partial boundary step. Mutable steps are re-evaluated,
//     never served stale.
//
// The settled rule assumes appends never land strictly behind the global
// MaxTime watermark; landing AT the watermark is fine, per the strict
// inequality above. The scrape pipeline satisfies this (timestamps are
// non-decreasing: each scrape batch carries one timestamp >= every
// earlier one). Heads that accept bounded out-of-order appends declare it
// by implementing OutOfOrderWindow() int64 (tsdb.DB and the cluster ring
// do): the cache widens the mutable tail by that window, serving only
// steps strictly below fillMax − window. That is sound because an
// accepted out-of-order sample must land above (head MaxTime − window) at
// commit time, and the fill-time watermark is never ahead of the
// commit-time one. Deployments appending behind even that window (bulk
// backfill) should disable the cache or accept staleness bounded by the
// lag.
// Entries also never serve steps whose padded read
// window reaches below the head's pruned watermark (PrunedThrough), so
// results cannot resurrect data that retention already removed.
//
// All cached PromQL results are immutable snapshots: values are deep-cloned
// on insert and on every hit, so callers can mutate what they receive
// without corrupting the cache (and cache entries never alias head-owned
// label slices).
package querycache

import (
	"math"
	"strings"
	"sync"
	"time"

	"repro/internal/labels"
	"repro/internal/promql"
	"repro/internal/telemetry"
)

// Head reports the head's append progress; *tsdb.DB implements it. The
// cache uses it to decide which cached steps are still provably correct.
type Head interface {
	// MaxTime returns the latest appended timestamp, or false when empty.
	MaxTime() (int64, bool)
	// PrunedThrough returns the highest retention cutoff ever applied —
	// samples below it may be gone, samples at or above it are untouched —
	// or false when nothing was ever pruned.
	PrunedThrough() (int64, bool)
	// AppendEpoch returns a counter that advances on every appended sample.
	AppendEpoch() uint64
	// MutationGen returns a counter that advances on destructive operations
	// (series deletion); any change invalidates every PromQL entry.
	MutationGen() uint64
}

// DefaultMaxBytes is the byte budget used when Options.MaxBytes is unset.
const DefaultMaxBytes = 64 << 20

// Options configure a Cache.
type Options struct {
	// MaxBytes is the total byte budget across all shards; <= 0 picks
	// DefaultMaxBytes.
	MaxBytes int64
	// Shards is the number of lock stripes, rounded up to a power of two;
	// <= 0 picks 16.
	Shards int
	// Head supplies append progress. Required for PromQL caching
	// (RangeQuery / InstantQuery cache nothing without it); the blob API
	// works without one.
	Head Head
	// Lookback must match the evaluating engine's LookbackDelta; it is part
	// of every PromQL key and of the padding used for the retention floor.
	Lookback time.Duration
	// MaxSteps must match the evaluating engine's MaxSteps; range requests
	// beyond it bypass the cache so the engine's step guardrail fires
	// exactly as it would uncached — splicing must never assemble a window
	// the engine would refuse to evaluate. 0 picks promql.DefaultMaxSteps.
	// (Oversized results are additionally bounded by the byte budget: an
	// entry larger than one shard's share is never stored.)
	MaxSteps int
	// Paranoid re-runs the cold evaluation after every splice and fails the
	// query if the spliced result is not byte-identical — the always-on test
	// oracle. Production paths leave it off.
	Paranoid bool
	// Clock supplies the time used for blob TTL expiry; nil means time.Now.
	// The cluster simulator wires its simulated clock here.
	Clock func() time.Time
	// Telemetry, when set, registers the cache's counters and occupancy
	// gauges on this registry; the /api/v1/status/querycache JSON and the
	// /metrics exposition then read the very same instruments and can never
	// disagree. Nil keeps the counters private to Stats().
	Telemetry *telemetry.Registry
	// Name labels the telemetry series (`cache="<name>"`) so multiple
	// caches in one process (promapi and the LB both run one) stay
	// distinguishable; empty picks "default".
	Name string
}

// Outcome classifies how a lookup was served.
type Outcome string

const (
	// OutcomeHit: served entirely from cache, no evaluation.
	OutcomeHit Outcome = "hit"
	// OutcomeMiss: no reusable entry; evaluated cold and stored.
	OutcomeMiss Outcome = "miss"
	// OutcomeSplice: cached steps reused, only the uncovered remainder
	// evaluated.
	OutcomeSplice Outcome = "splice"
	// OutcomeBypass: the cache did not apply (no head, unparseable query,
	// degenerate window); evaluated cold, nothing stored.
	OutcomeBypass Outcome = "bypass"
)

// Stats is a point-in-time counter snapshot, JSON-shaped for the
// /api/v1/status/querycache endpoint.
type Stats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Splices       uint64 `json:"splices"`
	SpliceFails   uint64 `json:"spliceFails"` // paranoid-mode mismatches
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
	Coalesced     uint64 `json:"coalesced"` // waited behind an identical in-flight eval
	NegHits       uint64 `json:"negHits"`   // limit errors replayed from cache
	NegStores     uint64 `json:"negStores"` // limit errors cached
	Entries       int    `json:"entries"`
	Bytes         int64  `json:"bytes"`
	MaxBytes      int64  `json:"maxBytes"`
	Shards        int    `json:"shards"`
}

// Cache is the sharded, memory-bounded result cache. All methods are safe
// for concurrent use. The zero value is not usable; call New.
type Cache struct {
	opts   Options
	shards []*cacheShard
	mask   uint64

	// flights collapses concurrent cold evaluations of one key into a
	// single backend call (see singleflight.go).
	flights flightGroup

	// oooWindow widens the mutable tail for heads that accept bounded
	// out-of-order appends (probed from Head at New; 0 for strict heads).
	oooWindow int64

	// Outcome counters are telemetry instruments (one atomic add each, same
	// cost as the atomic.Uint64 fields they replaced). When
	// Options.Telemetry is set they are registered there; otherwise they
	// live on a private registry and only Stats() sees them.
	hits          *telemetry.Counter
	misses        *telemetry.Counter
	splices       *telemetry.Counter
	spliceFails   *telemetry.Counter
	evictions     *telemetry.Counter
	invalidations *telemetry.Counter
	coalesced     *telemetry.Counter
	negHits       *telemetry.Counter
	negStores     *telemetry.Counter
}

// New returns a Cache with the given options.
func New(opts Options) *Cache {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	n := opts.Shards
	if n <= 0 {
		n = 16
	}
	p := 1
	for p < n {
		p <<= 1
	}
	n = p
	if opts.Lookback <= 0 {
		opts.Lookback = 5 * time.Minute
	}
	c := &Cache{opts: opts, shards: make([]*cacheShard, n), mask: uint64(n - 1)}
	if ow, ok := opts.Head.(interface{ OutOfOrderWindow() int64 }); ok {
		if w := ow.OutOfOrderWindow(); w > 0 {
			c.oooWindow = w
		}
	}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			budget:  opts.MaxBytes / int64(n),
			entries: make(map[string]*entry),
		}
	}
	c.instrument()
	return c
}

// instrument creates the outcome counters, on Options.Telemetry when set
// (exposing them at /metrics) or on a private registry otherwise.
func (c *Cache) instrument() {
	reg := c.opts.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	name := c.opts.Name
	if name == "" {
		name = "default"
	}
	lbl := []string{"cache", name}
	c.hits = reg.Counter("telemetry_querycache_hits_total",
		"Lookups served entirely from cache.", lbl...)
	c.misses = reg.Counter("telemetry_querycache_misses_total",
		"Lookups with no reusable entry (evaluated cold and stored).", lbl...)
	c.splices = reg.Counter("telemetry_querycache_splices_total",
		"Range lookups that reused cached steps and evaluated only the remainder.", lbl...)
	c.spliceFails = reg.Counter("telemetry_querycache_splice_fails_total",
		"Paranoid-mode splice results that mismatched the cold evaluation.", lbl...)
	c.evictions = reg.Counter("telemetry_querycache_evictions_total",
		"Entries evicted to stay inside the byte budget.", lbl...)
	c.invalidations = reg.Counter("telemetry_querycache_invalidations_total",
		"Entries dropped as stale (mutation gen change, purge, expiry).", lbl...)
	c.coalesced = reg.Counter("telemetry_querycache_coalesced_total",
		"Lookups that waited behind an identical in-flight evaluation.", lbl...)
	c.negHits = reg.Counter("telemetry_querycache_neg_hits_total",
		"Limit errors replayed from the negative cache.", lbl...)
	c.negStores = reg.Counter("telemetry_querycache_neg_stores_total",
		"Limit errors stored in the negative cache.", lbl...)
	reg.GaugeFunc("telemetry_querycache_entries",
		"Live cache entries across shards.",
		func() float64 {
			n := 0
			for _, sh := range c.shards {
				sh.mu.Lock()
				n += len(sh.entries)
				sh.mu.Unlock()
			}
			return float64(n)
		}, lbl...)
	reg.GaugeFunc("telemetry_querycache_bytes",
		"Bytes held across shards (byte budget in telemetry_querycache_max_bytes).",
		func() float64 {
			var b int64
			for _, sh := range c.shards {
				sh.mu.Lock()
				b += sh.bytes
				sh.mu.Unlock()
			}
			return float64(b)
		}, lbl...)
	reg.GaugeFunc("telemetry_querycache_max_bytes",
		"Configured byte budget.",
		func() float64 { return float64(c.opts.MaxBytes) }, lbl...)
}

// settledBefore returns the timestamp strictly below which steps filled at
// watermark fillMax are immutable: fillMax itself for strict heads, fillMax
// minus the out-of-order window when the head accepts bounded backwards
// appends. A MinInt64 fillMax (filled against an empty head) stays MinInt64
// — nothing was settled.
func (c *Cache) settledBefore(fillMax int64) int64 {
	if fillMax == math.MinInt64 {
		return fillMax
	}
	return fillMax - c.oooWindow
}

// Stats returns a snapshot of the cache counters and occupancy.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:          c.hits.Value(),
		Misses:        c.misses.Value(),
		Splices:       c.splices.Value(),
		SpliceFails:   c.spliceFails.Value(),
		Evictions:     c.evictions.Value(),
		Invalidations: c.invalidations.Value(),
		Coalesced:     c.coalesced.Value(),
		NegHits:       c.negHits.Value(),
		NegStores:     c.negStores.Value(),
		MaxBytes:      c.opts.MaxBytes,
		Shards:        len(c.shards),
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		st.Entries += len(sh.entries)
		st.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return st
}

// Purge drops every entry (counted as invalidations).
func (c *Cache) Purge() {
	for _, sh := range c.shards {
		sh.mu.Lock()
		n := len(sh.entries)
		sh.entries = make(map[string]*entry)
		sh.head, sh.tail = nil, nil
		sh.bytes = 0
		sh.mu.Unlock()
		c.invalidations.Add(uint64(n))
	}
}

// maxSteps returns the range-request size beyond which the cache steps
// aside (Options.MaxSteps, defaulted like the engine defaults).
func (c *Cache) maxSteps() int64 {
	if c.opts.MaxSteps > 0 {
		return int64(c.opts.MaxSteps)
	}
	return promql.DefaultMaxSteps
}

func (c *Cache) now() time.Time {
	if c.opts.Clock != nil {
		return c.opts.Clock()
	}
	return time.Now()
}

func (c *Cache) shardFor(key string) *cacheShard {
	return c.shards[fnv64a(key)&c.mask]
}

// fnv64a hashes the key with the same FNV-1a the TSDB head stripes by.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// entry kinds.
const (
	kindRange uint8 = iota
	kindInstant
	kindBlob
	// kindNegative caches a query-shaped failure (an engine *LimitError —
	// the API's 422): a panel that trips MaxSamples re-trips it on every
	// dashboard refresh, and the engine pays the full guardrail's worth of
	// work each time before erroring. Negative entries obey the same
	// staleness contract as positive ones — same fill-time watermark,
	// epoch and generation checks — so the error is only replayed while a
	// cold evaluation would provably fail identically.
	kindNegative
)

// entry is one cached result. Entries are immutable after insertion —
// updates replace the whole entry — so a pointer read under the shard lock
// can be dereferenced after releasing it.
type entry struct {
	key        string
	kind       uint8
	cost       int64
	prev, next *entry // LRU links; head = most recently used

	// Fill-time head state (range + instant kinds).
	fillMax   int64 // head MaxTime at fill; minInt64 when head was empty
	fillEpoch uint64
	fillGen   uint64

	// Range payload: matrix on the grid startMs, startMs+stepMs, ... lastMs.
	matrix          promql.Matrix
	startMs, lastMs int64
	stepMs          int64

	// Instant payload (promql.Vector or promql.Scalar).
	value promql.Value

	// Blob payload.
	blob      []byte
	expiresMs int64 // cache-clock deadline, Unix ms; 0 = no expiry

	// Negative payload: the limit error a cold evaluation of exactly this
	// window produced. padMs is the window's read padding, kept so the
	// pruned-watermark check can tell when retention may have shrunk the
	// window back under the limit.
	negErr error
	padMs  int64
}

// cacheShard is one lock stripe: a map plus an intrusive LRU list with a
// byte budget.
type cacheShard struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	entries map[string]*entry
	head    *entry // most recently used
	tail    *entry // least recently used
}

// get returns the live entry for key, marking it most-recently-used.
func (sh *cacheShard) get(key string) *entry {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.entries[key]
	if e != nil {
		sh.touchLocked(e)
	}
	return e
}

// put inserts e, replacing any entry under the same key, and evicts from
// the LRU tail while the shard exceeds its budget. It returns the number
// of entries evicted (not counting the replacement). Entries larger than
// the whole shard budget are not stored.
func (sh *cacheShard) put(e *entry) (evicted int, stored bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e.cost > sh.budget {
		return 0, false
	}
	if old := sh.entries[e.key]; old != nil {
		sh.removeLocked(old)
	}
	sh.entries[e.key] = e
	sh.pushFrontLocked(e)
	sh.bytes += e.cost
	for sh.bytes > sh.budget && sh.tail != nil && sh.tail != e {
		evicted++
		sh.removeLocked(sh.tail)
	}
	return evicted, true
}

// remove drops the entry under key if it is still the same pointer.
func (sh *cacheShard) remove(key string, e *entry) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if cur := sh.entries[key]; cur == e {
		sh.removeLocked(cur)
	}
}

func (sh *cacheShard) removeLocked(e *entry) {
	delete(sh.entries, e.key)
	sh.unlinkLocked(e)
	sh.bytes -= e.cost
}

func (sh *cacheShard) unlinkLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if sh.head == e {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if sh.tail == e {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *cacheShard) pushFrontLocked(e *entry) {
	e.prev, e.next = nil, sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *cacheShard) touchLocked(e *entry) {
	if sh.head == e {
		return
	}
	sh.unlinkLocked(e)
	sh.pushFrontLocked(e)
}

// --- blob API -------------------------------------------------------------

// GetBlob returns the payload stored under key, or false when absent or
// expired. The returned slice is the cache's copy: callers must treat it as
// read-only (write it to a response, do not modify it).
func (c *Cache) GetBlob(key string) ([]byte, bool) {
	key = "b\x00" + key
	sh := c.shardFor(key)
	e := sh.get(key)
	if e == nil || e.kind != kindBlob {
		c.misses.Add(1)
		return nil, false
	}
	if e.expiresMs != 0 && c.now().UnixMilli() >= e.expiresMs {
		sh.remove(key, e)
		c.invalidations.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return e.blob, true
}

// PutBlob stores an opaque payload under key for at most ttl (<= 0 stores
// without expiry). The body is copied; the caller keeps ownership of its
// slice.
func (c *Cache) PutBlob(key string, body []byte, ttl time.Duration) {
	key = "b\x00" + key
	e := &entry{
		key:  key,
		kind: kindBlob,
		blob: append([]byte(nil), body...),
		cost: int64(len(key)+len(body)) + entryOverhead,
	}
	if ttl > 0 {
		e.expiresMs = c.now().Add(ttl).UnixMilli()
	}
	evicted, _ := c.shardFor(key).put(e)
	c.evictions.Add(uint64(evicted))
}

// --- key building & costing ----------------------------------------------

// NormalizeQuery returns the canonical form of a PromQL query (the parsed
// expression reprinted), so whitespace and formatting variants of the same
// panel query share one cache entry. Unparseable input is returned trimmed;
// it will fail identically in the evaluator.
func NormalizeQuery(q string) string {
	if expr, err := promql.ParseExprCached(q); err == nil {
		return expr.String()
	}
	return strings.TrimSpace(q)
}

const entryOverhead = 128

func labelsCost(ls labels.Labels) int64 {
	n := int64(32)
	for _, l := range ls {
		n += int64(len(l.Name)+len(l.Value)) + 32
	}
	return n
}

func matrixCost(m promql.Matrix) int64 {
	n := int64(entryOverhead)
	for _, s := range m {
		n += labelsCost(s.Labels) + 16*int64(len(s.Samples)) + 48
	}
	return n
}

func vectorCost(v promql.Vector) int64 {
	n := int64(entryOverhead)
	for _, s := range v {
		n += labelsCost(s.Labels) + 24
	}
	return n
}
