package querycache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/promql"
)

// TestSingleflightColdStampede proves the satellite claim end-to-end: N
// concurrent cold requests for one key cost exactly one backend
// evaluation. The eval blocks on a release channel while the test waits —
// deterministically, via the latch's waiter count — for the leader to be
// inside eval and all N-1 followers to be parked on the latch.
func TestSingleflightColdStampede(t *testing.T) {
	env := newEnv(t, Options{})
	env.fill(40)
	const query = "sum by (i) (m0)"
	start, end := env.now-20*stepMs, env.now

	const n = 8
	release := make(chan struct{})
	var evals atomic.Int32
	eval := func(ctx context.Context, s, e time.Time, st time.Duration) (promql.Matrix, error) {
		evals.Add(1)
		<-release
		return env.eng.RangeCtx(ctx, env.db, query, s, e, st)
	}

	results := make([]promql.Matrix, n)
	outcomes := make([]Outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, out, err := env.cache.RangeQuery(context.Background(), query,
				model.MillisToTime(start), model.MillisToTime(end), stepMs*time.Millisecond, eval)
			if err != nil {
				t.Error(err)
				return
			}
			results[i], outcomes[i] = m, out
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for (evals.Load() != 1 || env.cache.flights.waiting() != n-1) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := env.cache.flights.waiting(); got != n-1 {
		t.Fatalf("%d followers parked on the latch, want %d", got, n-1)
	}
	close(release)
	wg.Wait()

	if got := evals.Load(); got != 1 {
		t.Fatalf("%d concurrent cold requests cost %d backend evals, want exactly 1", n, got)
	}
	hits := 0
	for i := range results {
		env.mustEqualCold(query, start, end, results[i])
		if outcomes[i] == OutcomeHit {
			hits++
		}
	}
	if hits != n-1 {
		t.Fatalf("%d followers served as hits, want %d (outcomes %v)", hits, n-1, outcomes)
	}
	if st := env.cache.Stats(); st.Coalesced != n-1 {
		t.Fatalf("coalesced = %d, want %d", st.Coalesced, n-1)
	}
}

// TestSingleflightInstant is the instant-path counterpart: concurrent
// identical instant queries collapse to one evaluation.
func TestSingleflightInstant(t *testing.T) {
	env := newEnv(t, Options{})
	env.fill(10)
	const query = "sum(m0)"
	ts := model.MillisToTime(env.now)

	const n = 6
	release := make(chan struct{})
	var evals atomic.Int32
	eval := func(ctx context.Context) (promql.Value, error) {
		evals.Add(1)
		<-release
		return env.eng.InstantCtx(ctx, env.db, query, ts)
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := env.cache.InstantQuery(context.Background(), query, ts, eval); err != nil {
				t.Error(err)
			}
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for (evals.Load() != 1 || env.cache.flights.waiting() != n-1) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := env.cache.flights.waiting(); got != n-1 {
		t.Fatalf("%d followers parked, want %d", got, n-1)
	}
	close(release)
	wg.Wait()
	if got := evals.Load(); got != 1 {
		t.Fatalf("evals = %d, want 1", got)
	}
}

// TestSingleflightLeaderError: when the leader's evaluation fails, parked
// followers do not inherit the error — they retry once, find nothing
// stored, and evaluate for themselves (unlatched).
func TestSingleflightLeaderError(t *testing.T) {
	env := newEnv(t, Options{})
	env.fill(10)
	const query = "sum by (i) (m0)"
	start, end := env.now-5*stepMs, env.now

	boom := errors.New("backend down")
	var calls atomic.Int32
	fail := make(chan struct{})
	eval := func(ctx context.Context, s, e time.Time, st time.Duration) (promql.Matrix, error) {
		if calls.Add(1) == 1 {
			<-fail
			return nil, boom
		}
		return env.eng.RangeCtx(ctx, env.db, query, s, e, st)
	}

	errs := make(chan error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := env.cache.RangeQuery(context.Background(), query,
				model.MillisToTime(start), model.MillisToTime(end), stepMs*time.Millisecond, eval)
			errs <- err
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for (calls.Load() != 1 || env.cache.flights.waiting() != 1) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(fail)
	wg.Wait()
	close(errs)
	var failed, ok int
	for err := range errs {
		if errors.Is(err, boom) {
			failed++
		} else if err == nil {
			ok++
		} else {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if failed != 1 || ok != 1 {
		t.Fatalf("leader/follower outcomes: %d failed, %d succeeded; want 1 and 1", failed, ok)
	}
}
