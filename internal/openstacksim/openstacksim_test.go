package openstacksim

import (
	"testing"
	"time"

	"repro/internal/exporter"
	"repro/internal/hw"
	"repro/internal/model"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func newHost(t *testing.T, name string) *hw.Node {
	t.Helper()
	spec := hw.DefaultIntelSpec(name)
	spec.NoiseFrac = 0
	n, err := hw.NewNode(spec, t0)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBootAndDelete(t *testing.T) {
	host := newHost(t, "hv1")
	m := NewManager("cloud", t0, host)
	vm, err := m.Boot(VMSpec{
		Name: "web", User: "alice", Project: "tenant1",
		VCPUs: 8, MemBytes: 16 << 30,
		CPUUtil: func(time.Duration) float64 { return 0.6 },
	})
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	if vm.State != model.UnitRunning || vm.Host != "hv1" {
		t.Errorf("vm = %+v", vm)
	}
	// Cgroup in the libvirt layout.
	path := "/sys/fs/cgroup/machine.slice/machine-qemu-" + vm.ID + ".scope/cpu.stat"
	if !host.FS.Exists(path) {
		t.Errorf("missing cgroup %s", path)
	}
	m.Advance(time.Minute)
	// The exporter's libvirt collector sees the VM.
	c := &exporter.CgroupCollector{FS: host.FS, Layout: exporter.LibvirtLayout()}
	fams, err := c.Collect()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range fams {
		if f.Name == "ceems_compute_unit_cpu_usage_seconds_total" {
			for _, metric := range f.Metrics {
				if metric.Labels.Get("uuid") == vm.ID && metric.Labels.Get("manager") == "openstack" {
					found = true
					if metric.Value < 250 || metric.Value > 350 {
						t.Errorf("vm cpu usage = %v, want ~288", metric.Value)
					}
				}
			}
		}
	}
	if !found {
		t.Error("libvirt collector did not find the VM")
	}

	if err := m.Delete(vm.ID); err != nil {
		t.Fatal(err)
	}
	if host.FS.Exists(path) {
		t.Error("cgroup survived deletion")
	}
	if err := m.Delete(vm.ID); err == nil {
		t.Error("double delete accepted")
	}
}

func TestCapacity(t *testing.T) {
	host := newHost(t, "hv1") // 64 cpus
	m := NewManager("cloud", t0, host)
	if _, err := m.Boot(VMSpec{Name: "big", User: "u", Project: "p", VCPUs: 64, MemBytes: 1 << 30}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Boot(VMSpec{Name: "extra", User: "u", Project: "p", VCPUs: 1, MemBytes: 1 << 30}); err == nil {
		t.Error("over-capacity boot accepted")
	}
	if _, err := m.Boot(VMSpec{Name: "zero", User: "u", Project: "p"}); err == nil {
		t.Error("zero-vcpu boot accepted")
	}
}

func TestUnits(t *testing.T) {
	host := newHost(t, "hv1")
	m := NewManager("cloud", t0, host)
	vm, _ := m.Boot(VMSpec{Name: "web", User: "alice", Project: "t1", VCPUs: 4, MemBytes: 8 << 30})
	m.Advance(30 * time.Second)
	units := m.Units(t0)
	if len(units) != 1 {
		t.Fatalf("units = %d", len(units))
	}
	u := units[0]
	if u.Manager != model.ManagerOpenstack || u.Project != "t1" || u.ElapsedSec != 30 {
		t.Errorf("unit = %+v", u)
	}
	m.Delete(vm.ID)
	m.Advance(time.Hour)
	units = m.Units(t0)
	if len(units) != 1 || units[0].State != model.UnitCompleted {
		t.Errorf("terminated unit = %+v", units)
	}
	// Cutoff excludes old terminations.
	units = m.Units(m.now.Add(time.Hour))
	if len(units) != 0 {
		t.Errorf("cutoff failed: %+v", units)
	}
}
