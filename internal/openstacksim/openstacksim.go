// Package openstacksim simulates an Openstack compute host managed through
// libvirt: VMs are long-lived workloads whose cgroups live under
// machine.slice with qemu scope names, which is exactly the layout the
// CEEMS exporter's libvirt cgroup collector walks. It demonstrates the
// paper's resource-manager-agnostic claim (and its "extending CEEMS to
// Openstack" future work) with the same hardware substrate as SLURM.
package openstacksim

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/hw"
	"repro/internal/model"
)

// VMSpec describes a VM boot request (flavor-style sizing).
type VMSpec struct {
	Name     string
	User     string // keystone user
	Project  string // keystone project/tenant
	VCPUs    int
	MemBytes int64
	// Utilization profiles, as for batch jobs.
	CPUUtil func(elapsed time.Duration) float64
	MemUtil func(elapsed time.Duration) float64
}

// VM is a running or terminated virtual machine.
type VM struct {
	ID   string // uuid-ish instance id
	Spec VMSpec

	State     model.UnitState
	CreatedAt time.Time
	StartedAt time.Time
	EndedAt   time.Time
	Host      string
}

// Manager is the simulated compute service over a set of hypervisor nodes.
type Manager struct {
	Cluster string

	mu     sync.Mutex
	now    time.Time
	hosts  []*hw.Node
	free   map[string]int // vcpus free per host
	nextID int
	vms    map[string]*VM
	gone   []*VM
}

// NewManager creates the service over hypervisor nodes.
func NewManager(cluster string, start time.Time, hosts ...*hw.Node) *Manager {
	m := &Manager{
		Cluster: cluster, now: start, hosts: hosts,
		free: map[string]int{}, vms: map[string]*VM{},
	}
	for _, h := range hosts {
		m.free[h.Spec.Name] = h.Spec.TotalCPUs()
	}
	return m
}

// cgroupPath is the libvirt layout the exporter's collector matches.
func cgroupPath(id string) string {
	return fmt.Sprintf("/sys/fs/cgroup/machine.slice/machine-qemu-%s.scope", id)
}

// Boot schedules a VM on the first host with capacity.
func (m *Manager) Boot(spec VMSpec) (*VM, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if spec.VCPUs <= 0 {
		return nil, fmt.Errorf("openstacksim: VM must request vCPUs")
	}
	for _, h := range m.hosts {
		if m.free[h.Spec.Name] < spec.VCPUs {
			continue
		}
		m.nextID++
		id := fmt.Sprintf("%08d", m.nextID)
		vm := &VM{
			ID: id, Spec: spec, State: model.UnitRunning,
			CreatedAt: m.now, StartedAt: m.now, Host: h.Spec.Name,
		}
		err := h.AddWorkload(&hw.Workload{
			ID:         "machine-qemu-" + id,
			CgroupPath: cgroupPath(id),
			CPUs:       spec.VCPUs,
			MemLimit:   spec.MemBytes,
			CPUUtil:    spec.CPUUtil,
			MemUtil:    spec.MemUtil,
		})
		if err != nil {
			return nil, err
		}
		h.FlushFiles()
		m.free[h.Spec.Name] -= spec.VCPUs
		m.vms[id] = vm
		return vm, nil
	}
	return nil, fmt.Errorf("openstacksim: no host with %d free vCPUs", spec.VCPUs)
}

// Delete terminates a VM.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	vm, ok := m.vms[id]
	if !ok {
		return fmt.Errorf("openstacksim: no VM %s", id)
	}
	for _, h := range m.hosts {
		if h.Spec.Name == vm.Host {
			h.RemoveWorkload("machine-qemu-" + id)
			m.free[h.Spec.Name] += vm.Spec.VCPUs
		}
	}
	vm.State = model.UnitCompleted
	vm.EndedAt = m.now
	delete(m.vms, id)
	m.gone = append(m.gone, vm)
	return nil
}

// Advance steps the hypervisors forward.
func (m *Manager) Advance(dt time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = m.now.Add(dt)
	for _, h := range m.hosts {
		h.Advance(dt)
	}
}

// Units converts VMs to the unified compute-unit schema.
func (m *Manager) Units(cutoff time.Time) []model.Unit {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []model.Unit
	conv := func(vm *VM) model.Unit {
		u := model.Unit{
			UUID:        model.UnitUUID(m.Cluster, model.ManagerOpenstack, vm.ID),
			ID:          vm.ID,
			Cluster:     m.Cluster,
			Manager:     model.ManagerOpenstack,
			Name:        vm.Spec.Name,
			User:        vm.Spec.User,
			Project:     vm.Spec.Project,
			State:       vm.State,
			CreatedAt:   vm.CreatedAt.UnixMilli(),
			StartedAt:   vm.StartedAt.UnixMilli(),
			CPUs:        vm.Spec.VCPUs,
			MemoryBytes: vm.Spec.MemBytes,
			Nodes:       []string{vm.Host},
		}
		end := m.now
		if !vm.EndedAt.IsZero() {
			end = vm.EndedAt
			u.EndedAt = vm.EndedAt.UnixMilli()
		}
		u.ElapsedSec = int64(end.Sub(vm.StartedAt).Seconds())
		return u
	}
	for _, vm := range m.vms {
		out = append(out, conv(vm))
	}
	for _, vm := range m.gone {
		if !vm.EndedAt.Before(cutoff) {
			out = append(out, conv(vm))
		}
	}
	return out
}
