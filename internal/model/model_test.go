package model

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversionRoundTrip(t *testing.T) {
	now := time.Now().Truncate(time.Millisecond)
	ms := TimeToMillis(now)
	back := MillisToTime(ms)
	if !back.Equal(now) {
		t.Errorf("round trip: %v != %v", back, now)
	}
}

func TestDurationMillis(t *testing.T) {
	if DurationMillis(1500*time.Millisecond) != 1500 {
		t.Error("DurationMillis wrong")
	}
}

func TestUnitStateTerminated(t *testing.T) {
	for _, s := range []UnitState{UnitCompleted, UnitFailed, UnitCancelled, UnitTimeout} {
		if !s.Terminated() {
			t.Errorf("%s should be terminal", s)
		}
	}
	for _, s := range []UnitState{UnitPending, UnitRunning} {
		if s.Terminated() {
			t.Errorf("%s should not be terminal", s)
		}
	}
}

func TestUnitUUID(t *testing.T) {
	got := UnitUUID("jz", ManagerSLURM, "1234")
	if got != "jz/slurm/1234" {
		t.Errorf("UnitUUID = %q", got)
	}
}

func TestAggregateMergeWeighted(t *testing.T) {
	a := UsageAggregate{AvgCPUUsage: 0.5, NumSamples: 10, TotalEnergyJoules: 100}
	b := UsageAggregate{AvgCPUUsage: 1.0, NumSamples: 30, TotalEnergyJoules: 50}
	a.Merge(b)
	if math.Abs(a.AvgCPUUsage-0.875) > 1e-12 {
		t.Errorf("weighted mean = %v, want 0.875", a.AvgCPUUsage)
	}
	if a.TotalEnergyJoules != 150 {
		t.Errorf("energy sum = %v", a.TotalEnergyJoules)
	}
	if a.NumSamples != 40 {
		t.Errorf("samples = %v", a.NumSamples)
	}
}

func TestAggregateMergeEmpty(t *testing.T) {
	var a UsageAggregate
	a.Merge(UsageAggregate{})
	if a.AvgCPUUsage != 0 || a.NumSamples != 0 {
		t.Error("merging empties should stay zero")
	}
}

func TestTotalEnergyKWh(t *testing.T) {
	u := UsageAggregate{TotalEnergyJoules: 3.6e6}
	if u.TotalEnergyKWh() != 1.0 {
		t.Errorf("3.6 MJ should be 1 kWh, got %v", u.TotalEnergyKWh())
	}
}

func TestGPUKindProperties(t *testing.T) {
	if GPUMI250.Vendor() != "amd" {
		t.Error("MI250 vendor")
	}
	if GPUA100.Vendor() != "nvidia" {
		t.Error("A100 vendor")
	}
	for _, k := range []GPUKind{GPUV100, GPUA100, GPUH100, GPUMI250} {
		if k.MaxPowerWatts() <= k.IdlePowerWatts() {
			t.Errorf("%s: max power must exceed idle", k)
		}
		if k.MemoryBytes() <= 0 {
			t.Errorf("%s: memory must be positive", k)
		}
	}
}

// Property: Merge is associative in totals and sample counts.
func TestMergeTotalsProperty(t *testing.T) {
	f := func(e1, e2, e3 float64, n1, n2, n3 uint16) bool {
		mk := func(e float64, n uint16) UsageAggregate {
			// Constrain to physically plausible joule counts to avoid
			// float64 overflow, which is out of scope for the invariant.
			v := math.Mod(math.Abs(e), 1e12)
			if math.IsNaN(v) {
				v = 0
			}
			return UsageAggregate{TotalEnergyJoules: v, NumSamples: int64(n)}
		}
		// (a+b)+c
		x := mk(e1, n1)
		x.Merge(mk(e2, n2))
		x.Merge(mk(e3, n3))
		// a+(b+c)
		y := mk(e2, n2)
		y.Merge(mk(e3, n3))
		z := mk(e1, n1)
		z.Merge(y)
		scale := math.Max(math.Abs(x.TotalEnergyJoules), 1)
		return math.Abs(x.TotalEnergyJoules-z.TotalEnergyJoules)/scale < 1e-9 &&
			x.NumSamples == z.NumSamples
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: weighted mean stays within the min/max of its inputs.
func TestMergeMeanBoundsProperty(t *testing.T) {
	f := func(u1, u2 float64, n1, n2 uint8) bool {
		if n1 == 0 && n2 == 0 {
			return true
		}
		c1 := math.Mod(math.Abs(u1), 1)
		c2 := math.Mod(math.Abs(u2), 1)
		a := UsageAggregate{AvgCPUUsage: c1, NumSamples: int64(n1)}
		a.Merge(UsageAggregate{AvgCPUUsage: c2, NumSamples: int64(n2)})
		lo, hi := math.Min(c1, c2), math.Max(c1, c2)
		// Zero-sample inputs contribute nothing; mean of remaining stays in bounds.
		if n1 == 0 {
			lo, hi = c2, c2
		}
		if n2 == 0 {
			lo, hi = c1, c1
		}
		return a.AvgCPUUsage >= lo-1e-9 && a.AvgCPUUsage <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
