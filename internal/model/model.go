// Package model holds the shared data types of the CEEMS stack: metric
// samples, compute units (the resource-manager-agnostic abstraction over
// batch jobs, VMs and pods), usage aggregates and time helpers.
//
// Timestamps are Unix milliseconds throughout, as in Prometheus.
package model

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/labels"
)

// Sample is one (timestamp, value) point of a series.
type Sample struct {
	T int64   // Unix milliseconds
	V float64 // sample value
}

// staleNaN is the Prometheus staleness sentinel: a NaN with a fixed
// payload, appended when a previously-present series disappears from a
// scrape or rule evaluation so queries stop returning it immediately
// instead of after the lookback window.
var staleNaN = math.Float64frombits(0x7ff0000000000002)

// StaleNaN returns the staleness marker value.
func StaleNaN() float64 { return staleNaN }

// IsStaleNaN reports whether v is the staleness marker (and not an
// ordinary NaN).
func IsStaleNaN(v float64) bool {
	return math.Float64bits(v) == 0x7ff0000000000002
}

// Series is a labelled stream of samples, sorted by timestamp.
type Series struct {
	Labels  labels.Labels
	Samples []Sample
}

// SelectHints carries per-query context to hint-aware storage so a Select
// can do less work: the time bounds it will actually be read at, the query
// resolution step, and a sample budget the storage may enforce mid-pass
// instead of copying everything and letting the engine discard it.
type SelectHints struct {
	// Start and End are the inclusive sample-time bounds, Unix ms.
	Start, End int64
	// Step is the query resolution step in ms; 0 for instant queries.
	Step int64
	// SampleLimit bounds the total samples the Select may return; <= 0
	// means unlimited. Storage that enforces it returns ErrSampleLimit
	// (possibly wrapped) as soon as the budget is exceeded.
	SampleLimit int64
	// Func is the PromQL function consuming the selector ("" for a bare
	// selector). Downsampling-aware storage uses it to decide whether a
	// pre-aggregated stream (sum/count/min/max per resolution bucket) can
	// substitute for raw samples; counter functions like rate force raw.
	Func string
	// Range is the matrix selector's window in ms (0 for instant
	// selectors). Storage must not serve data sparser than the window, or
	// steps would see empty windows between points.
	Range int64
	// RawAfter, when non-zero, forbids serving downsampled data at or after
	// this timestamp. The hot/cold fan-in querier sets it to the hot head's
	// minimum time so the overlap region is never double-represented (raw
	// from the head plus aggregate points from the store).
	RawAfter int64
}

// ErrSampleLimit is returned by hint-aware Selects when a query's sample
// budget is exhausted mid-pass.
var ErrSampleLimit = errors.New("storage: query sample limit exceeded")

// TimeToMillis converts a time.Time to Unix milliseconds.
func TimeToMillis(t time.Time) int64 { return t.UnixNano() / int64(time.Millisecond) }

// MillisToTime converts Unix milliseconds to time.Time (UTC).
func MillisToTime(ms int64) time.Time { return time.Unix(ms/1000, (ms%1000)*1e6).UTC() }

// DurationMillis converts a duration to milliseconds.
func DurationMillis(d time.Duration) int64 { return int64(d / time.Millisecond) }

// ResourceManager identifies the kind of resource manager a compute unit
// came from.
type ResourceManager string

const (
	ManagerSLURM     ResourceManager = "slurm"
	ManagerOpenstack ResourceManager = "openstack"
	ManagerK8s       ResourceManager = "k8s"
)

// UnitState is the lifecycle state of a compute unit, normalized across
// resource managers (SLURM job states, VM states, pod phases).
type UnitState string

const (
	UnitPending   UnitState = "pending"
	UnitRunning   UnitState = "running"
	UnitCompleted UnitState = "completed"
	UnitFailed    UnitState = "failed"
	UnitCancelled UnitState = "cancelled"
	UnitTimeout   UnitState = "timeout"
)

// Terminated reports whether the state is terminal.
func (s UnitState) Terminated() bool {
	switch s {
	case UnitCompleted, UnitFailed, UnitCancelled, UnitTimeout:
		return true
	}
	return false
}

// Unit is the unified compute-unit record stored by the CEEMS API server.
// It abstracts a SLURM batch job, an Openstack VM or a Kubernetes pod into a
// single schema (paper §II.B.b: "a unified DB schema to store compute units
// of different resource managers").
type Unit struct {
	UUID        string          // globally unique: <cluster>/<manager>/<id>
	ID          string          // manager-native id (job id, VM uuid, pod uid)
	Cluster     string          // cluster identifier
	Manager     ResourceManager // source resource manager
	Name        string          // job name / VM name / pod name
	User        string          // owning user
	Project     string          // accounting project / tenant / namespace
	Partition   string          // partition / flavor class / node pool
	State       UnitState
	CreatedAt   int64 // ms
	StartedAt   int64 // ms; 0 when never started
	EndedAt     int64 // ms; 0 while running
	ElapsedSec  int64 // wall-clock runtime in seconds
	CPUs        int   // allocated logical CPUs
	MemoryBytes int64 // allocated memory
	GPUs        int   // allocated GPU count
	GPUOrdinals []int // node-local GPU indices bound to the unit
	Nodes       []string
	ExitCode    int
	// Aggregated metrics, filled by the API server updater.
	Aggregate UsageAggregate
}

// UsageAggregate holds the aggregated metrics of one compute unit (or the
// running totals of a user/project) as computed from TSDB queries.
type UsageAggregate struct {
	CPUTimeSec        float64 // total CPU seconds consumed
	AvgCPUUsage       float64 // mean CPU utilisation fraction of allocation [0,1]
	AvgCPUMemUsage    float64 // mean memory utilisation fraction of allocation [0,1]
	AvgGPUUsage       float64 // mean GPU utilisation fraction [0,1]
	AvgGPUMemUsage    float64 // mean GPU memory utilisation fraction [0,1]
	HostEnergyJoules  float64 // CPU-side (host) energy attributed to the unit
	GPUEnergyJoules   float64 // GPU energy attributed to the unit
	TotalEnergyJoules float64 // host + GPU
	EmissionsGrams    float64 // gCO2e for TotalEnergyJoules under the factor in effect
	NumSamples        int64   // number of TSDB samples folded in (for weighted updates)
}

// TotalEnergyKWh returns the total energy in kilowatt-hours.
func (u UsageAggregate) TotalEnergyKWh() float64 { return u.TotalEnergyJoules / 3.6e6 }

// Merge folds another aggregate (covering disjoint samples) into u using
// sample-count weighting for the mean fields and summation for totals.
func (u *UsageAggregate) Merge(o UsageAggregate) {
	n, m := float64(u.NumSamples), float64(o.NumSamples)
	if n+m > 0 {
		u.AvgCPUUsage = (u.AvgCPUUsage*n + o.AvgCPUUsage*m) / (n + m)
		u.AvgCPUMemUsage = (u.AvgCPUMemUsage*n + o.AvgCPUMemUsage*m) / (n + m)
		u.AvgGPUUsage = (u.AvgGPUUsage*n + o.AvgGPUUsage*m) / (n + m)
		u.AvgGPUMemUsage = (u.AvgGPUMemUsage*n + o.AvgGPUMemUsage*m) / (n + m)
	}
	u.CPUTimeSec += o.CPUTimeSec
	u.HostEnergyJoules += o.HostEnergyJoules
	u.GPUEnergyJoules += o.GPUEnergyJoules
	u.TotalEnergyJoules += o.TotalEnergyJoules
	u.EmissionsGrams += o.EmissionsGrams
	u.NumSamples += o.NumSamples
}

// UserUsage is the rolled-up usage of one user on one cluster.
type UserUsage struct {
	Cluster   string
	User      string
	NumUnits  int64
	Aggregate UsageAggregate
}

// ProjectUsage is the rolled-up usage of one accounting project.
type ProjectUsage struct {
	Cluster   string
	Project   string
	NumUnits  int64
	Aggregate UsageAggregate
}

// UnitUUID builds the globally unique unit identifier.
func UnitUUID(cluster string, mgr ResourceManager, id string) string {
	return fmt.Sprintf("%s/%s/%s", cluster, mgr, id)
}

// GPUKind enumerates supported accelerator models.
type GPUKind string

const (
	GPUV100  GPUKind = "V100"
	GPUA100  GPUKind = "A100"
	GPUH100  GPUKind = "H100"
	GPUMI250 GPUKind = "MI250" // AMD
)

// Vendor returns the accelerator vendor for the kind.
func (k GPUKind) Vendor() string {
	if k == GPUMI250 {
		return "amd"
	}
	return "nvidia"
}

// MaxPowerWatts returns the board power limit used by the simulator.
func (k GPUKind) MaxPowerWatts() float64 {
	switch k {
	case GPUV100:
		return 300
	case GPUA100:
		return 400
	case GPUH100:
		return 700
	case GPUMI250:
		return 560
	}
	return 250
}

// IdlePowerWatts returns the simulator's idle board power.
func (k GPUKind) IdlePowerWatts() float64 {
	switch k {
	case GPUV100:
		return 35
	case GPUA100:
		return 50
	case GPUH100:
		return 70
	case GPUMI250:
		return 90
	}
	return 30
}

// MemoryBytes returns the device memory size.
func (k GPUKind) MemoryBytes() int64 {
	switch k {
	case GPUV100:
		return 32 << 30
	case GPUA100:
		return 80 << 30
	case GPUH100:
		return 80 << 30
	case GPUMI250:
		return 128 << 30
	}
	return 16 << 30
}
