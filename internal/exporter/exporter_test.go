package exporter

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/expofmt"
	"repro/internal/hw"
	"repro/internal/model"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// busyNode returns a node with one running 16-cpu workload, advanced 60s.
func busyNode(t *testing.T) *hw.Node {
	t.Helper()
	spec := hw.DefaultIntelSpec("n1")
	spec.NoiseFrac = 0
	n, err := hw.NewNode(spec, t0)
	if err != nil {
		t.Fatal(err)
	}
	err = n.AddWorkload(&hw.Workload{
		ID: "job_42", CPUs: 16, MemLimit: 32 << 30,
		CPUUtil: func(time.Duration) float64 { return 0.5 },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		n.Advance(15 * time.Second)
	}
	return n
}

func familiesByName(fams []*expofmt.Family) map[string]*expofmt.Family {
	m := map[string]*expofmt.Family{}
	for _, f := range fams {
		m[f.Name] = f
	}
	return m
}

func TestCgroupCollector(t *testing.T) {
	n := busyNode(t)
	c := &CgroupCollector{FS: n.FS, Layout: SlurmLayout()}
	fams, err := c.Collect()
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	m := familiesByName(fams)
	cpu := m["ceems_compute_unit_cpu_usage_seconds_total"]
	if len(cpu.Metrics) != 1 {
		t.Fatalf("cpu metrics = %d", len(cpu.Metrics))
	}
	// 0.5 util * 16 cpus * 60 s = 480 s.
	if got := cpu.Metrics[0].Value; got < 479 || got > 481 {
		t.Errorf("cpu usage = %v, want ~480", got)
	}
	if cpu.Metrics[0].Labels.Get("uuid") != "42" {
		t.Errorf("uuid = %q", cpu.Metrics[0].Labels.Get("uuid"))
	}
	if cpu.Metrics[0].Labels.Get("manager") != "slurm" {
		t.Errorf("manager = %q", cpu.Metrics[0].Labels.Get("manager"))
	}
	if m["ceems_compute_unit_memory_limit_bytes"].Metrics[0].Value != float64(int64(32<<30)) {
		t.Error("memory limit wrong")
	}
	if m["ceems_compute_units"].Metrics[0].Value != 1 {
		t.Error("unit count wrong")
	}
}

func TestCgroupCollectorEmptyRoot(t *testing.T) {
	spec := hw.DefaultIntelSpec("n1")
	n, _ := hw.NewNode(spec, t0)
	c := &CgroupCollector{FS: n.FS, Layout: SlurmLayout()}
	fams, err := c.Collect()
	if err != nil {
		t.Fatalf("empty root should not error: %v", err)
	}
	m := familiesByName(fams)
	if m["ceems_compute_units"].Metrics[0].Value != 0 {
		t.Error("unit count should be 0")
	}
}

func TestRAPLCollector(t *testing.T) {
	n := busyNode(t)
	c := &RAPLCollector{FS: n.FS}
	fams, err := c.Collect()
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	m := familiesByName(fams)
	pkg := m["ceems_rapl_package_joules_total"]
	dram := m["ceems_rapl_dram_joules_total"]
	if len(pkg.Metrics) != 2 {
		t.Fatalf("package domains = %d, want 2", len(pkg.Metrics))
	}
	if len(dram.Metrics) != 2 {
		t.Fatalf("dram domains = %d, want 2", len(dram.Metrics))
	}
	if pkg.Metrics[0].Value <= 0 {
		t.Error("package energy should be positive")
	}
	// AMD node: no dram metrics.
	amdSpec := hw.DefaultAMDSpec("a1")
	amd, _ := hw.NewNode(amdSpec, t0)
	fams, _ = (&RAPLCollector{FS: amd.FS}).Collect()
	m = familiesByName(fams)
	if len(m["ceems_rapl_dram_joules_total"].Metrics) != 0 {
		t.Error("AMD node should expose no dram domain")
	}
}

func TestIPMICollector(t *testing.T) {
	n := busyNode(t)
	c := &IPMICollector{Reader: n}
	fams, err := c.Collect()
	if err != nil {
		t.Fatal(err)
	}
	v := fams[0].Metrics[0].Value
	if v < 100 || v > 1000 {
		t.Errorf("ipmi watts = %v", v)
	}
}

type failingIPMI struct{}

func (failingIPMI) PowerReading() (float64, error) { return 0, errors.New("bmc timeout") }

func TestIPMICollectorError(t *testing.T) {
	c := &IPMICollector{Reader: failingIPMI{}}
	if _, err := c.Collect(); err == nil {
		t.Error("expected error")
	}
}

func TestNodeCollector(t *testing.T) {
	n := busyNode(t)
	c := &NodeCollector{FS: n.FS}
	fams, err := c.Collect()
	if err != nil {
		t.Fatal(err)
	}
	m := familiesByName(fams)
	cpu := m["ceems_cpu_seconds_total"]
	var user, idle float64
	for _, metric := range cpu.Metrics {
		switch metric.Labels.Get("mode") {
		case "user":
			user = metric.Value
		case "idle":
			idle = metric.Value
		}
	}
	if user <= 0 || idle <= 0 {
		t.Errorf("cpu modes: user=%v idle=%v", user, idle)
	}
	mem := m["ceems_meminfo_bytes"]
	var total float64
	for _, metric := range mem.Metrics {
		if metric.Labels.Get("field") == "MemTotal" {
			total = metric.Value
		}
	}
	if total != float64(int64(256<<30)) {
		t.Errorf("MemTotal = %v", total)
	}
}

type stubGPUProvider map[string][]GPUBinding

func (s stubGPUProvider) GPUOrdinalsByUnit() map[string][]GPUBinding { return s }

func TestGPUMapCollector(t *testing.T) {
	c := &GPUMapCollector{
		Provider: stubGPUProvider{"77": {{Ordinal: 0, UUID: "GPU-abc"}, {Ordinal: 2, UUID: "GPU-def"}}},
		Manager:  model.ManagerSLURM,
	}
	fams, err := c.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(fams[0].Metrics) != 2 {
		t.Fatalf("bindings = %d", len(fams[0].Metrics))
	}
	ls := fams[0].Metrics[0].Labels
	if ls.Get("uuid") != "77" || ls.Get("manager") != "slurm" {
		t.Errorf("labels = %v", ls)
	}
}

func TestExporterGather(t *testing.T) {
	n := busyNode(t)
	e := New(
		&CgroupCollector{FS: n.FS, Layout: SlurmLayout()},
		&RAPLCollector{FS: n.FS},
		&IPMICollector{Reader: n},
		&NodeCollector{FS: n.FS},
	)
	fams := familiesByName(e.Gather())
	for _, want := range []string{
		"ceems_compute_unit_cpu_usage_seconds_total",
		"ceems_rapl_package_joules_total",
		"ceems_ipmi_dcmi_current_watts",
		"ceems_cpu_seconds_total",
		"ceems_exporter_collector_up",
		"ceems_exporter_scrapes_total",
		"ceems_exporter_memory_bytes",
	} {
		if _, ok := fams[want]; !ok {
			t.Errorf("missing family %s", want)
		}
	}
	for _, m := range fams["ceems_exporter_collector_up"].Metrics {
		if m.Value != 1 {
			t.Errorf("collector %s down", m.Labels.Get("collector"))
		}
	}
}

func TestExporterCollectorFailureIsolated(t *testing.T) {
	n := busyNode(t)
	e := New(
		&IPMICollector{Reader: failingIPMI{}},
		&RAPLCollector{FS: n.FS},
	)
	fams := familiesByName(e.Gather())
	if _, ok := fams["ceems_rapl_package_joules_total"]; !ok {
		t.Error("healthy collector suppressed by failing one")
	}
	for _, m := range fams["ceems_exporter_collector_up"].Metrics {
		want := 1.0
		if m.Labels.Get("collector") == "ipmi" {
			want = 0
		}
		if m.Value != want {
			t.Errorf("collector_up{%s} = %v", m.Labels.Get("collector"), m.Value)
		}
	}
}

func TestEnableDisable(t *testing.T) {
	n := busyNode(t)
	e := New(&RAPLCollector{FS: n.FS}, &NodeCollector{FS: n.FS})
	if err := e.SetEnabled("rapl", false); err != nil {
		t.Fatal(err)
	}
	fams := familiesByName(e.Gather())
	if _, ok := fams["ceems_rapl_package_joules_total"]; ok {
		t.Error("disabled collector still collected")
	}
	if err := e.SetEnabled("rapl", true); err != nil {
		t.Fatal(err)
	}
	fams = familiesByName(e.Gather())
	if _, ok := fams["ceems_rapl_package_joules_total"]; !ok {
		t.Error("re-enabled collector missing")
	}
	if err := e.SetEnabled("nope", true); err == nil {
		t.Error("unknown collector accepted")
	}
	names := e.CollectorNames()
	if len(names) != 2 || names[0] != "node" {
		t.Errorf("names = %v", names)
	}
}

func TestHTTPEndpointAndAuth(t *testing.T) {
	n := busyNode(t)
	e := New(&RAPLCollector{FS: n.FS})
	e.Username = "ceems"
	e.Password = "s3cret"
	srv := httptest.NewServer(e)
	defer srv.Close()

	// Unauthenticated request rejected.
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 401 {
		t.Errorf("unauth status = %d", resp.StatusCode)
	}

	// Authenticated request succeeds and parses.
	hr, err := httpGet(srv.URL+"/metrics", "ceems", "s3cret")
	if err != nil {
		t.Fatal(err)
	}
	if hr.StatusCode != 200 {
		t.Fatalf("auth status = %d", hr.StatusCode)
	}
	body, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if !strings.Contains(string(body), "ceems_rapl_package_joules_total") {
		t.Error("payload missing rapl metric")
	}
	fams, err := expofmt.Parse(strings.NewReader(string(body)))
	if err != nil || len(fams) == 0 {
		t.Errorf("payload unparseable: %v", err)
	}

	// Wrong password rejected.
	hr2, err := httpGet(srv.URL+"/metrics", "ceems", "wrong")
	if err != nil {
		t.Fatal(err)
	}
	hr2.Body.Close()
	if hr2.StatusCode != 401 {
		t.Errorf("wrong-password status = %d", hr2.StatusCode)
	}

	// Unknown path 404s.
	hr3, err := httpGet(srv.URL+"/other", "ceems", "s3cret")
	if err != nil {
		t.Fatal(err)
	}
	hr3.Body.Close()
	if hr3.StatusCode != 404 {
		t.Errorf("bad path status = %d", hr3.StatusCode)
	}
}

// TestMetricsPathExactMatch pins the regression where the handler accepted
// any path ending in /metrics (e.g. /foo/metrics): only the exact /metrics
// path (and / for convenience) serves the exposition.
func TestMetricsPathExactMatch(t *testing.T) {
	n := busyNode(t)
	e := New(&RAPLCollector{FS: n.FS})
	srv := httptest.NewServer(e)
	defer srv.Close()

	for path, want := range map[string]int{
		"/metrics":         200,
		"/":                200,
		"/foo/metrics":     404,
		"/api/v1/metrics":  404,
		"/metricsextra":    404,
		"/metrics/nested":  404,
		"/-/not-a-metrics": 404,
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s status = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// httpGet issues a GET with basic auth.
func httpGet(url, user, pass string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	req.SetBasicAuth(user, pass)
	return http.DefaultClient.Do(req)
}

func TestRender(t *testing.T) {
	n := busyNode(t)
	e := New(&IPMICollector{Reader: n})
	out := e.Render()
	if !strings.Contains(out, "ceems_ipmi_dcmi_current_watts") {
		t.Errorf("render = %s", out)
	}
}

func BenchmarkExporterScrape(b *testing.B) {
	spec := hw.DefaultIntelSpec("bench")
	n, _ := hw.NewNode(spec, t0)
	for j := 0; j < 16; j++ {
		n.AddWorkload(&hw.Workload{
			ID: "job_" + string(rune('a'+j)), CPUs: 4, MemLimit: 8 << 30,
		})
	}
	n.Advance(15 * time.Second)
	e := New(
		&CgroupCollector{FS: n.FS, Layout: SlurmLayout()},
		&RAPLCollector{FS: n.FS},
		&IPMICollector{Reader: n},
		&NodeCollector{FS: n.FS},
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Render()
	}
}
