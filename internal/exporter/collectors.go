package exporter

import (
	"fmt"
	"regexp"
	"strings"

	"repro/internal/expofmt"
	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/sysfs"
)

// CgroupLayout describes where a resource manager puts workload cgroups and
// how to recover the compute-unit ID from a directory name. CEEMS is
// manager-agnostic precisely because only this layout differs between
// SLURM, libvirt and kubelet (paper §II.A.a).
type CgroupLayout struct {
	// Root is the directory whose children are workload cgroups.
	Root string
	// Pattern extracts the unit ID as capture group 1 from a child name.
	Pattern *regexp.Regexp
	// Manager labels the emitted metrics.
	Manager model.ResourceManager
}

// SlurmLayout matches cgroups v2 slurmstepd job directories.
func SlurmLayout() CgroupLayout {
	return CgroupLayout{
		Root:    "/sys/fs/cgroup/system.slice/slurmstepd.scope",
		Pattern: regexp.MustCompile(`^job_(\d+)$`),
		Manager: model.ManagerSLURM,
	}
}

// LibvirtLayout matches machine.slice qemu VM scopes.
func LibvirtLayout() CgroupLayout {
	return CgroupLayout{
		Root:    "/sys/fs/cgroup/machine.slice",
		Pattern: regexp.MustCompile(`^machine-qemu-(.+)\.scope$`),
		Manager: model.ManagerOpenstack,
	}
}

// K8sLayout matches kubepods pod slices.
func K8sLayout() CgroupLayout {
	return CgroupLayout{
		Root:    "/sys/fs/cgroup/kubepods.slice",
		Pattern: regexp.MustCompile(`^kubepods-pod(.+)\.slice$`),
		Manager: model.ManagerK8s,
	}
}

// CgroupCollector walks the cgroup tree and emits per-compute-unit CPU and
// memory accounting.
type CgroupCollector struct {
	FS     sysfs.FS
	Layout CgroupLayout
}

// Name implements Collector.
func (c *CgroupCollector) Name() string { return "cgroup" }

// Collect reads every workload cgroup under the layout root.
func (c *CgroupCollector) Collect() ([]*expofmt.Family, error) {
	cpuTotal := &expofmt.Family{
		Name: "ceems_compute_unit_cpu_usage_seconds_total", Type: expofmt.TypeCounter,
		Help: "Total CPU time of the compute unit (from cgroup cpu.stat).",
	}
	cpuUser := &expofmt.Family{
		Name: "ceems_compute_unit_cpu_user_seconds_total", Type: expofmt.TypeCounter,
		Help: "User-mode CPU time of the compute unit.",
	}
	memUsed := &expofmt.Family{
		Name: "ceems_compute_unit_memory_used_bytes", Type: expofmt.TypeGauge,
		Help: "Resident memory of the compute unit (cgroup memory.current).",
	}
	memLimit := &expofmt.Family{
		Name: "ceems_compute_unit_memory_limit_bytes", Type: expofmt.TypeGauge,
		Help: "Memory limit of the compute unit (cgroup memory.max).",
	}
	units := &expofmt.Family{
		Name: "ceems_compute_units", Type: expofmt.TypeGauge,
		Help: "Number of compute units on the node.",
	}

	names, err := c.FS.ReadDir(c.Layout.Root)
	if err != nil {
		// No cgroup root means no workloads have run yet; that is healthy.
		units.Metrics = []expofmt.Metric{{Value: 0}}
		return []*expofmt.Family{cpuTotal, cpuUser, memUsed, memLimit, units}, nil
	}
	count := 0
	for _, name := range names {
		m := c.Layout.Pattern.FindStringSubmatch(name)
		if m == nil {
			continue
		}
		uuid := m[1]
		dir := c.Layout.Root + "/" + name
		ls := labels.FromStrings("uuid", uuid, "manager", string(c.Layout.Manager))
		kv, err := sysfs.ReadKVFile(c.FS, dir+"/cpu.stat")
		if err == nil {
			cpuTotal.Metrics = append(cpuTotal.Metrics, expofmt.Metric{
				Labels: ls, Value: float64(kv["usage_usec"]) / 1e6})
			cpuUser.Metrics = append(cpuUser.Metrics, expofmt.Metric{
				Labels: ls, Value: float64(kv["user_usec"]) / 1e6})
		}
		if v, err := sysfs.ReadUint64(c.FS, dir+"/memory.current"); err == nil {
			memUsed.Metrics = append(memUsed.Metrics, expofmt.Metric{Labels: ls, Value: float64(v)})
		}
		if v, err := sysfs.ReadUint64(c.FS, dir+"/memory.max"); err == nil {
			memLimit.Metrics = append(memLimit.Metrics, expofmt.Metric{Labels: ls, Value: float64(v)})
		}
		count++
	}
	units.Metrics = []expofmt.Metric{{Value: float64(count)}}
	return []*expofmt.Family{cpuTotal, cpuUser, memUsed, memLimit, units}, nil
}

// RAPLCollector reads the powercap energy counters.
type RAPLCollector struct {
	FS sysfs.FS
}

// Name implements Collector.
func (c *RAPLCollector) Name() string { return "rapl" }

// Collect walks /sys/class/powercap for package and dram domains.
func (c *RAPLCollector) Collect() ([]*expofmt.Family, error) {
	pkg := &expofmt.Family{
		Name: "ceems_rapl_package_joules_total", Type: expofmt.TypeCounter,
		Help: "RAPL package domain energy counter in joules.",
	}
	dram := &expofmt.Family{
		Name: "ceems_rapl_dram_joules_total", Type: expofmt.TypeCounter,
		Help: "RAPL dram domain energy counter in joules.",
	}
	root := "/sys/class/powercap"
	names, err := c.FS.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("rapl: %w", err)
	}
	for _, name := range names {
		if !strings.HasPrefix(name, "intel-rapl:") || strings.Count(name, ":") != 1 {
			continue
		}
		base := root + "/" + name
		idx := strings.TrimPrefix(name, "intel-rapl:")
		uj, err := sysfs.ReadUint64(c.FS, base+"/energy_uj")
		if err != nil {
			continue
		}
		pkg.Metrics = append(pkg.Metrics, expofmt.Metric{
			Labels: labels.FromStrings("index", idx, "path", name),
			Value:  float64(uj) / 1e6,
		})
		// Sub-domains (dram).
		subs, err := c.FS.ReadDir(base)
		if err != nil {
			continue
		}
		for _, sub := range subs {
			if !strings.HasPrefix(sub, "intel-rapl:") {
				continue
			}
			nameData, err := c.FS.ReadFile(base + "/" + sub + "/name")
			if err != nil || strings.TrimSpace(string(nameData)) != "dram" {
				continue
			}
			uj, err := sysfs.ReadUint64(c.FS, base+"/"+sub+"/energy_uj")
			if err != nil {
				continue
			}
			dram.Metrics = append(dram.Metrics, expofmt.Metric{
				Labels: labels.FromStrings("index", idx, "path", sub),
				Value:  float64(uj) / 1e6,
			})
		}
	}
	return []*expofmt.Family{pkg, dram}, nil
}

// IPMIReader abstracts the IPMI-DCMI power reading command; *hw.Node
// implements it in simulation, and a real deployment would shell out to
// `ipmitool dcmi power reading`.
type IPMIReader interface {
	PowerReading() (float64, error)
}

// IPMICollector emits the BMC's node-level power reading.
type IPMICollector struct {
	Reader IPMIReader
}

// Name implements Collector.
func (c *IPMICollector) Name() string { return "ipmi" }

// Collect reads the current DCMI power value.
func (c *IPMICollector) Collect() ([]*expofmt.Family, error) {
	w, err := c.Reader.PowerReading()
	if err != nil {
		return nil, fmt.Errorf("ipmi: %w", err)
	}
	return []*expofmt.Family{{
		Name: "ceems_ipmi_dcmi_current_watts", Type: expofmt.TypeGauge,
		Help:    "Node power reported by IPMI-DCMI.",
		Metrics: []expofmt.Metric{{Value: w}},
	}}, nil
}

// NodeCollector emits node-level CPU and memory metrics from /proc.
type NodeCollector struct {
	FS sysfs.FS
}

// Name implements Collector.
func (c *NodeCollector) Name() string { return "node" }

// Collect parses /proc/stat and /proc/meminfo.
func (c *NodeCollector) Collect() ([]*expofmt.Family, error) {
	out := make([]*expofmt.Family, 0, 3)
	data, err := c.FS.ReadFile("/proc/stat")
	if err != nil {
		return nil, fmt.Errorf("node: %w", err)
	}
	cpu := &expofmt.Family{
		Name: "ceems_cpu_seconds_total", Type: expofmt.TypeCounter,
		Help: "Node CPU time by mode, in seconds (from /proc/stat).",
	}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 5 || fields[0] != "cpu" {
			continue
		}
		modes := []string{"user", "nice", "system", "idle", "iowait"}
		for i, mode := range modes {
			if i+1 >= len(fields) {
				break
			}
			var j uint64
			fmt.Sscanf(fields[i+1], "%d", &j)
			cpu.Metrics = append(cpu.Metrics, expofmt.Metric{
				Labels: labels.FromStrings("mode", mode),
				Value:  float64(j) / 100, // jiffies at USER_HZ=100
			})
		}
	}
	out = append(out, cpu)

	if data, err := c.FS.ReadFile("/proc/meminfo"); err == nil {
		mem := &expofmt.Family{
			Name: "ceems_meminfo_bytes", Type: expofmt.TypeGauge,
			Help: "Node memory by field (from /proc/meminfo).",
		}
		for _, line := range strings.Split(string(data), "\n") {
			fields := strings.Fields(line)
			if len(fields) < 2 {
				continue
			}
			key := strings.TrimSuffix(fields[0], ":")
			var kb uint64
			fmt.Sscanf(fields[1], "%d", &kb)
			mem.Metrics = append(mem.Metrics, expofmt.Metric{
				Labels: labels.FromStrings("field", key),
				Value:  float64(kb) * 1024,
			})
		}
		out = append(out, mem)
	}
	return out, nil
}

// GPUOrdinalProvider supplies the compute-unit→GPU binding of the node.
// The SLURM simulator's scheduler knows it; on a real system the exporter
// recovers it from the job environment. CEEMS must export it because the
// binding is not available post-mortem (paper §II.A.d).
type GPUOrdinalProvider interface {
	// GPUOrdinalsByUnit returns unit ID → GPU (ordinal, device UUID) pairs.
	GPUOrdinalsByUnit() map[string][]GPUBinding
}

// GPUBinding is one unit→device edge.
type GPUBinding struct {
	Ordinal int
	UUID    string
}

// GPUMapCollector exports the compute-unit→GPU index map.
type GPUMapCollector struct {
	Provider GPUOrdinalProvider
	Manager  model.ResourceManager
}

// Name implements Collector.
func (c *GPUMapCollector) Name() string { return "gpumap" }

// Collect emits one flag metric per unit↔GPU binding.
func (c *GPUMapCollector) Collect() ([]*expofmt.Family, error) {
	fam := &expofmt.Family{
		Name: "ceems_compute_unit_gpu_index_flag", Type: expofmt.TypeGauge,
		Help: "1 for each GPU ordinal bound to the compute unit.",
	}
	for uuid, binds := range c.Provider.GPUOrdinalsByUnit() {
		for _, b := range binds {
			fam.Metrics = append(fam.Metrics, expofmt.Metric{
				Labels: labels.FromStrings(
					"uuid", uuid,
					"index", fmt.Sprintf("%d", b.Ordinal),
					"gpuuuid", b.UUID,
					"manager", string(c.Manager),
				),
				Value: 1,
			})
		}
	}
	return []*expofmt.Family{fam}, nil
}
