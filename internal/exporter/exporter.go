// Package exporter implements the CEEMS exporter (paper §II.B.a): a
// Prometheus exporter running on every compute node. It hosts a registry of
// collectors — cgroup compute-unit accounting, RAPL energy counters,
// IPMI-DCMI node power, node CPU/memory, and the compute-unit→GPU map —
// each of which can be enabled or disabled individually, and serves them
// over HTTP with optional basic auth and TLS, as the real exporter does to
// guard against abusive scrapers.
package exporter

import (
	"crypto/subtle"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/expofmt"
	"repro/internal/labels"
)

// Collector produces metric families for one subsystem.
type Collector interface {
	// Name is the collector's registry key (e.g. "rapl").
	Name() string
	// Collect renders current metric families.
	Collect() ([]*expofmt.Family, error)
}

// Exporter is a registry of collectors plus the HTTP serving glue.
type Exporter struct {
	mu         sync.RWMutex
	collectors map[string]Collector
	disabled   map[string]bool

	// Auth, when non-empty, enforces basic auth on /metrics.
	Username string
	Password string

	// Self-telemetry.
	scrapes       uint64
	lastScrapeDur time.Duration
}

// New returns an exporter with the given collectors registered and enabled.
func New(cs ...Collector) *Exporter {
	e := &Exporter{
		collectors: map[string]Collector{},
		disabled:   map[string]bool{},
	}
	for _, c := range cs {
		e.Register(c)
	}
	return e
}

// Register adds a collector (replacing any with the same name).
func (e *Exporter) Register(c Collector) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.collectors[c.Name()] = c
}

// SetEnabled enables or disables a collector by name, mirroring the real
// exporter's --collector.<name> CLI flags.
func (e *Exporter) SetEnabled(name string, enabled bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.collectors[name]; !ok {
		return fmt.Errorf("exporter: unknown collector %q", name)
	}
	e.disabled[name] = !enabled
	return nil
}

// CollectorNames lists registered collectors, sorted.
func (e *Exporter) CollectorNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.collectors))
	for n := range e.collectors {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Gather runs all enabled collectors and returns their families plus the
// exporter's self-telemetry. Collector failures surface as
// ceems_exporter_collector_up{collector=...} = 0 rather than failing the
// whole scrape.
func (e *Exporter) Gather() []*expofmt.Family {
	start := time.Now()
	e.mu.RLock()
	names := make([]string, 0, len(e.collectors))
	for n := range e.collectors {
		if !e.disabled[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	cs := make([]Collector, len(names))
	for i, n := range names {
		cs[i] = e.collectors[n]
	}
	e.mu.RUnlock()

	var out []*expofmt.Family
	colUp := &expofmt.Family{
		Name: "ceems_exporter_collector_up", Type: expofmt.TypeGauge,
		Help: "1 when the collector succeeded on the last scrape.",
	}
	for i, c := range cs {
		fams, err := c.Collect()
		up := 1.0
		if err != nil {
			up = 0
		} else {
			out = append(out, fams...)
		}
		colUp.Metrics = append(colUp.Metrics, expofmt.Metric{
			Labels: labels.FromStrings("collector", names[i]), Value: up,
		})
	}
	out = append(out, colUp)

	e.mu.Lock()
	e.scrapes++
	e.lastScrapeDur = time.Since(start)
	scrapes := e.scrapes
	e.mu.Unlock()

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	out = append(out,
		&expofmt.Family{
			Name: "ceems_exporter_scrapes_total", Type: expofmt.TypeCounter,
			Help:    "Number of scrapes served.",
			Metrics: []expofmt.Metric{{Value: float64(scrapes)}},
		},
		&expofmt.Family{
			Name: "ceems_exporter_memory_bytes", Type: expofmt.TypeGauge,
			Help:    "Exporter heap in use (paper claims 15-20 MB resident).",
			Metrics: []expofmt.Metric{{Value: float64(ms.HeapInuse)}},
		},
	)
	return out
}

// ServeHTTP serves /metrics in exposition format with optional basic auth.
func (e *Exporter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if e.Username != "" {
		u, p, ok := r.BasicAuth()
		if !ok ||
			subtle.ConstantTimeCompare([]byte(u), []byte(e.Username)) != 1 ||
			subtle.ConstantTimeCompare([]byte(p), []byte(e.Password)) != 1 {
			w.Header().Set("WWW-Authenticate", `Basic realm="ceems"`)
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
	}
	// Exact-path match: a suffix check would also accept /foo/metrics and
	// quietly serve the exposition on paths that should 404.
	if r.URL.Path != "/metrics" && r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	enc := expofmt.NewWriter(w)
	for _, f := range e.Gather() {
		if err := enc.WriteFamily(f); err != nil {
			return
		}
	}
	enc.Flush()
}

// Render returns the full exposition payload as a string, for in-process
// scraping by large-scale simulations.
func (e *Exporter) Render() string {
	var b strings.Builder
	enc := expofmt.NewWriter(&b)
	for _, f := range e.Gather() {
		enc.WriteFamily(f)
	}
	enc.Flush()
	return b.String()
}
