package remotewrite

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/scrape"
	"repro/internal/telemetry"
	"repro/internal/tsdb"
)

// DefaultRetryAfter is the Retry-After hint sent with 429 responses when
// the receiver has no configured value.
const DefaultRetryAfter = time.Second

// commitStatser is the optional interface a Batch may implement to report
// the out-of-order/duplicate breakdown of its last Commit. *tsdb.Appender
// does; the cluster ring batch does not (quorum commits only report a
// landed-sample count).
type commitStatser interface {
	LastCommitStats() tsdb.CommitStats
}

// Receiver serves POST /api/v1/write. Each request is a framed stream (see
// the package comment); the receiver decodes and commits one frame at a
// time through a Batch from NewBatch, so memory per request is bounded by
// one frame regardless of body size.
//
// Backpressure is explicit: at most MaxInflight requests hold commit slots
// at once. A request that cannot take a slot immediately — before its body
// is read at all — is answered 429 with a Retry-After header instead of
// queueing, so a storm of pushing agents backs off at the edge rather than
// buffering unboundedly in front of the shard commit path. A 200 response
// means every frame was committed (durably, under the node's WAL policy, or
// with W-quorum acks on the cluster ring); agents may retry any other
// response — the store's out-of-order window makes resends of partially
// committed batches idempotent.
type Receiver struct {
	// NewBatch returns a fresh commit batch: db.Appender() on a single
	// node, ring.NewBatch() on the cluster ring.
	NewBatch func() scrape.Batch
	// MaxInflight bounds concurrently committing requests; 0 picks
	// 2×GOMAXPROCS.
	MaxInflight int
	// RetryAfter is the backoff hint on 429 responses; 0 picks
	// DefaultRetryAfter.
	RetryAfter time.Duration
	// Telemetry, when set before the first request, exposes the ingest
	// counters as telemetry_remotewrite_* series; /api/v1/status/ingest
	// reads the same instruments. Nil keeps them private.
	Telemetry *telemetry.Registry

	once  sync.Once
	slots chan struct{}

	requests    *telemetry.Counter
	frames      *telemetry.Counter
	samples     *telemetry.Counter
	appended    *telemetry.Counter
	oooAccepted *telemetry.Counter
	duplicates  *telemetry.Counter
	tooOld      *telemetry.Counter
	rejected    *telemetry.Counter
	badRequests *telemetry.Counter
	failed      *telemetry.Counter
	inFlight    atomic.Int64

	rate rateWindow
}

// IngestStats is the JSON shape served by /api/v1/status/ingest.
type IngestStats struct {
	Requests        uint64  `json:"requests"`
	Frames          uint64  `json:"frames"`
	SamplesDecoded  uint64  `json:"samples_decoded"`
	SamplesAppended uint64  `json:"samples_appended"`
	OOOAccepted     uint64  `json:"ooo_accepted"`
	Duplicates      uint64  `json:"duplicates_skipped"`
	TooOld          uint64  `json:"ooo_too_old"`
	Rejected429     uint64  `json:"rejected_backpressure"`
	BadRequests     uint64  `json:"bad_requests"`
	Failed          uint64  `json:"failed_commits"`
	SamplesPerSec   float64 `json:"samples_per_s"`
	InFlight        int64   `json:"in_flight"`
	MaxInflight     int     `json:"max_inflight"`
}

func (rcv *Receiver) init() {
	rcv.once.Do(func() {
		n := rcv.MaxInflight
		if n <= 0 {
			n = 2 * runtime.GOMAXPROCS(0)
		}
		rcv.MaxInflight = n
		rcv.slots = make(chan struct{}, n)
		reg := rcv.Telemetry
		if reg == nil {
			reg = telemetry.NewRegistry()
		}
		rcv.requests = reg.Counter("telemetry_remotewrite_requests_total",
			"Remote-write POST requests received (including rejected ones).")
		rcv.frames = reg.Counter("telemetry_remotewrite_frames_total",
			"Frames decoded and committed.")
		rcv.samples = reg.Counter("telemetry_remotewrite_samples_decoded_total",
			"Samples decoded from frames before commit.")
		rcv.appended = reg.Counter("telemetry_remotewrite_samples_appended_total",
			"Samples the store accepted at commit.")
		rcv.oooAccepted = reg.Counter("telemetry_remotewrite_ooo_accepted_total",
			"Committed samples that landed through the out-of-order window.")
		rcv.duplicates = reg.Counter("telemetry_remotewrite_duplicates_total",
			"Exact duplicate samples silently skipped at commit.")
		rcv.tooOld = reg.Counter("telemetry_remotewrite_too_old_total",
			"Samples rejected for falling outside the out-of-order window.")
		rcv.rejected = reg.Counter("telemetry_remotewrite_rejected_total",
			"Requests answered 429 because every commit slot was taken.")
		rcv.badRequests = reg.Counter("telemetry_remotewrite_bad_requests_total",
			"Requests answered 400 (framing or validation errors).")
		rcv.failed = reg.Counter("telemetry_remotewrite_failed_commits_total",
			"Frames whose commit failed (WAL error, lost quorum).")
		reg.GaugeFunc("telemetry_remotewrite_in_flight",
			"Requests currently holding a commit slot.",
			func() float64 { return float64(rcv.inFlight.Load()) })
	})
}

// Stats snapshots the ingest counters.
func (rcv *Receiver) Stats() IngestStats {
	rcv.init()
	return IngestStats{
		Requests:        rcv.requests.Value(),
		Frames:          rcv.frames.Value(),
		SamplesDecoded:  rcv.samples.Value(),
		SamplesAppended: rcv.appended.Value(),
		OOOAccepted:     rcv.oooAccepted.Value(),
		Duplicates:      rcv.duplicates.Value(),
		TooOld:          rcv.tooOld.Value(),
		Rejected429:     rcv.rejected.Value(),
		BadRequests:     rcv.badRequests.Value(),
		Failed:          rcv.failed.Value(),
		SamplesPerSec:   rcv.rate.perSec(time.Now()),
		InFlight:        rcv.inFlight.Load(),
		MaxInflight:     rcv.MaxInflight,
	}
}

func (rcv *Receiver) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rcv.init()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeIngestErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	rcv.requests.Add(1)
	// Take a commit slot before touching the body: when the commit path is
	// saturated the bytes stay in the client's socket, not in our heap.
	select {
	case rcv.slots <- struct{}{}:
	default:
		rcv.rejected.Add(1)
		ra := rcv.RetryAfter
		if ra <= 0 {
			ra = DefaultRetryAfter
		}
		secs := int(ra.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeIngestErr(w, http.StatusTooManyRequests, "ingest saturated; retry later")
		return
	}
	defer func() { <-rcv.slots }()
	rcv.inFlight.Add(1)
	defer rcv.inFlight.Add(-1)

	dec := NewDecoder(r.Body)
	defer dec.Release()
	var appended, frames, decoded int
	for {
		fams, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			rcv.badRequests.Add(1)
			writeIngestErr(w, http.StatusBadRequest,
				fmt.Sprintf("frame %d: %v (%d frames committed)", frames, err, frames))
			return
		}
		batch := rcv.NewBatch()
		n := 0
		for _, f := range fams {
			for _, m := range f.Metrics {
				if m.TS == 0 {
					rcv.badRequests.Add(1)
					writeIngestErr(w, http.StatusBadRequest,
						fmt.Sprintf("frame %d: metric %s has no timestamp; remote write requires explicit timestamps (%d frames committed)", frames, f.Name, frames))
					return
				}
				batch.Add(m.Labels, m.TS, m.Value)
				n++
			}
		}
		decoded += n
		rcv.samples.Add(uint64(n))
		got, err := batch.Commit()
		if err != nil {
			rcv.failed.Add(1)
			// Commit failures (WAL write error, lost quorum) are the
			// store's fault, not the client's, and are retryable.
			writeIngestErr(w, http.StatusServiceUnavailable,
				fmt.Sprintf("frame %d: commit: %v (%d frames committed)", frames, err, frames))
			return
		}
		appended += got
		frames++
		rcv.frames.Add(1)
		rcv.appended.Add(uint64(got))
		rcv.rate.add(time.Now(), uint64(got))
		if cs, ok := batch.(commitStatser); ok {
			st := cs.LastCommitStats()
			rcv.oooAccepted.Add(uint64(st.OOOAccepted))
			rcv.duplicates.Add(uint64(st.Duplicates))
			rcv.tooOld.Add(uint64(st.TooOld))
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(map[string]any{
		"status": "success",
		"data": map[string]int{
			"frames":   frames,
			"decoded":  decoded,
			"appended": appended,
		},
	})
}

func writeIngestErr(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"status": "error", "error": msg})
}

// rateWindow tracks a trailing samples/s over ~10 one-second buckets.
type rateWindow struct {
	mu      sync.Mutex
	buckets [10]uint64
	seconds [10]int64
}

func (rw *rateWindow) add(now time.Time, n uint64) {
	sec := now.Unix()
	i := int(sec % int64(len(rw.buckets)))
	rw.mu.Lock()
	if rw.seconds[i] != sec {
		rw.seconds[i] = sec
		rw.buckets[i] = 0
	}
	rw.buckets[i] += n
	rw.mu.Unlock()
}

func (rw *rateWindow) perSec(now time.Time) float64 {
	sec := now.Unix()
	var total uint64
	rw.mu.Lock()
	for i := range rw.buckets {
		// Only buckets from the trailing window count; stale slots are
		// leftovers from >10s ago.
		if sec-rw.seconds[i] < int64(len(rw.buckets)) {
			total += rw.buckets[i]
		}
	}
	rw.mu.Unlock()
	return float64(total) / float64(len(rw.buckets))
}
