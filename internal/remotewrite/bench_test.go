package remotewrite

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/expofmt"
	"repro/internal/labels"
	"repro/internal/scrape"
	"repro/internal/tsdb"
)

// benchFamilies builds one batch: nSeries series, one sample each, stamped
// at base.
func benchFamilies(nSeries int, base int64) []*expofmt.Family {
	fam := &expofmt.Family{Name: "bench_ingest", Type: expofmt.TypeGauge}
	for s := 0; s < nSeries; s++ {
		fam.Metrics = append(fam.Metrics, expofmt.Metric{
			Labels: labels.FromStrings(
				labels.MetricName, "bench_ingest",
				"instance", fmt.Sprintf("node%02d", s%16),
				"idx", fmt.Sprintf("%04d", s)),
			Value: float64(base), TS: base,
		})
	}
	return []*expofmt.Family{fam}
}

// BenchmarkIngestPath compares sustained samples/s of the two ingest paths
// over the same head: the framed remote-write receiver (decode + commit per
// frame through ServeHTTP) vs the scrape loop shape (parse exposition text
// + batch commit). Client-side costs (framing, rendering) run outside the
// timer — the measurement is the server-side ingest path.
func BenchmarkIngestPath(b *testing.B) {
	const nSeries = 1000

	b.Run("remote-write", func(b *testing.B) {
		db := tsdb.MustOpen(tsdb.Options{OutOfOrderWindow: 60_000})
		defer db.Close()
		rcv := &Receiver{NewBatch: func() scrape.Batch { return db.Appender() }}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			var buf bytes.Buffer
			enc := NewEncoder(&buf, true)
			if err := enc.WriteBatch(benchFamilies(nSeries, int64(1000*(i+1)))); err != nil {
				b.Fatal(err)
			}
			req := httptest.NewRequest(http.MethodPost, "/api/v1/write", bytes.NewReader(buf.Bytes()))
			w := httptest.NewRecorder()
			b.StartTimer()
			rcv.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("push: %d %s", w.Code, w.Body)
			}
		}
		b.ReportMetric(float64(nSeries*b.N)/b.Elapsed().Seconds(), "samples/s")
	})

	b.Run("scrape", func(b *testing.B) {
		db := tsdb.MustOpen(tsdb.Options{OutOfOrderWindow: 60_000})
		defer db.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			var buf bytes.Buffer
			ew := expofmt.NewWriter(&buf)
			for _, f := range benchFamilies(nSeries, int64(1000*(i+1))) {
				if err := ew.WriteFamily(f); err != nil {
					b.Fatal(err)
				}
			}
			if err := ew.Flush(); err != nil {
				b.Fatal(err)
			}
			body := buf.Bytes()
			b.StartTimer()
			fams, err := expofmt.Parse(bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			batch := db.Appender()
			for _, f := range fams {
				for _, m := range f.Metrics {
					batch.Add(m.Labels, m.TS, m.Value)
				}
			}
			if _, err := batch.Commit(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(nSeries*b.N)/b.Elapsed().Seconds(), "samples/s")
	})
}
