package remotewrite

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"repro/internal/expofmt"
	"repro/internal/labels"
)

// randFamilies builds a deterministic pseudo-random batch: a handful of
// families, each with several metrics carrying explicit timestamps and
// label sets of varying shape.
func randFamilies(rng *rand.Rand, nFam, nMetrics int) []*expofmt.Family {
	fams := make([]*expofmt.Family, 0, nFam)
	for f := 0; f < nFam; f++ {
		name := fmt.Sprintf("rw_metric_%d", f)
		fam := &expofmt.Family{Name: name, Type: expofmt.TypeGauge}
		for m := 0; m < nMetrics; m++ {
			lset := map[string]string{
				labels.MetricName: name,
				"instance":        fmt.Sprintf("node%d", rng.Intn(4)),
			}
			if rng.Intn(2) == 0 {
				lset["uuid"] = fmt.Sprintf("job-%d", rng.Intn(100))
			}
			fam.Metrics = append(fam.Metrics, expofmt.Metric{
				Labels: labels.FromMap(lset),
				Value:  rng.NormFloat64() * 1000,
				TS:     1_000_000 + rng.Int63n(1_000_000),
			})
		}
		fams = append(fams, fam)
	}
	return fams
}

// flatten reduces families to a comparable set of (labels, ts, value)
// strings, the only content the ingest path cares about.
func flatten(fams []*expofmt.Family) []string {
	var out []string
	for _, f := range fams {
		for _, m := range f.Metrics {
			out = append(out, fmt.Sprintf("%s %d %v", m.Labels, m.TS, m.Value))
		}
	}
	return out
}

// encodeStream frames the given batches into one wire stream.
func encodeStream(t testing.TB, compress bool, batches ...[]*expofmt.Family) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := NewEncoder(&buf, compress)
	for _, b := range batches {
		if err := enc.WriteBatch(b); err != nil {
			t.Fatalf("WriteBatch: %v", err)
		}
	}
	return buf.Bytes()
}

// TestRemoteWriteRoundTrip is the fuzz-shaped encode/decode property: many
// randomized batches, both compression modes, every sample must survive the
// wire byte-exact and the stream must end with a clean io.EOF.
func TestRemoteWriteRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 50; trial++ {
				var sent [][]*expofmt.Family
				nBatches := 1 + rng.Intn(4)
				for i := 0; i < nBatches; i++ {
					sent = append(sent, randFamilies(rng, 1+rng.Intn(3), 1+rng.Intn(8)))
				}
				stream := encodeStream(t, compress, sent...)

				dec := NewDecoder(bytes.NewReader(stream))
				var got []string
				frames := 0
				for {
					fams, err := dec.Next()
					if err == io.EOF {
						break
					}
					if err != nil {
						t.Fatalf("trial %d frame %d: %v", trial, frames, err)
					}
					got = append(got, flatten(fams)...)
					frames++
				}
				dec.Release()
				if frames != nBatches {
					t.Fatalf("trial %d: decoded %d frames, want %d", trial, frames, nBatches)
				}
				var want []string
				for _, b := range sent {
					want = append(want, flatten(b)...)
				}
				if len(got) != len(want) {
					t.Fatalf("trial %d: %d samples decoded, want %d", trial, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d sample %d: got %q want %q", trial, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestRemoteWriteTruncatedStreams cuts a valid stream at EVERY byte offset:
// the decoder must deliver only complete frames and then fail with
// ErrTruncated (or report a clean EOF when the cut lands exactly on a frame
// boundary) — never garbage, never a panic.
func TestRemoteWriteTruncatedStreams(t *testing.T) {
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			full := encodeStream(t, compress,
				randFamilies(rng, 2, 3), randFamilies(rng, 1, 5), randFamilies(rng, 3, 2))

			// Frame boundaries: offsets where a cut is a clean end of stream.
			boundaries := map[int]bool{len(full): true}
			off := len(Magic)
			boundaries[off] = true
			for off < len(full) {
				plen := int(binary.LittleEndian.Uint32(full[off+1 : off+5]))
				off += 9 + plen
				boundaries[off] = true
			}

			for cut := 0; cut < len(full); cut++ {
				dec := NewDecoder(bytes.NewReader(full[:cut]))
				var lastErr error
				for {
					_, err := dec.Next()
					if err != nil {
						lastErr = err
						break
					}
				}
				dec.Release()
				if boundaries[cut] && cut >= len(Magic) {
					if lastErr != io.EOF {
						t.Fatalf("cut at boundary %d: got %v, want io.EOF", cut, lastErr)
					}
				} else if !errors.Is(lastErr, ErrTruncated) {
					t.Fatalf("cut at %d: got %v, want ErrTruncated", cut, lastErr)
				}
			}
		})
	}
}

// TestRemoteWriteCorruption flips bytes and forges headers: each corruption
// class must surface as its own sentinel error.
func TestRemoteWriteCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fams := randFamilies(rng, 2, 4)

	decodeAll := func(stream []byte) ([]string, error) {
		dec := NewDecoder(bytes.NewReader(stream))
		defer dec.Release()
		var out []string
		for {
			fams, err := dec.Next()
			if err == io.EOF {
				return out, nil
			}
			if err != nil {
				return out, err
			}
			out = append(out, flatten(fams)...)
		}
	}

	t.Run("bad magic", func(t *testing.T) {
		stream := encodeStream(t, false, fams)
		stream[0] ^= 0xff
		if _, err := decodeAll(stream); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("got %v, want ErrBadMagic", err)
		}
	})
	t.Run("bad flag", func(t *testing.T) {
		stream := encodeStream(t, false, fams)
		stream[4] = 0x7f // frame flag byte
		if _, err := decodeAll(stream); !errors.Is(err, ErrBadFlag) {
			t.Fatalf("got %v, want ErrBadFlag", err)
		}
	})
	t.Run("oversized frame", func(t *testing.T) {
		stream := encodeStream(t, false, fams)
		binary.LittleEndian.PutUint32(stream[5:9], MaxFrame+1)
		if _, err := decodeAll(stream); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("got %v, want ErrFrameTooLarge", err)
		}
	})
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("payload flip compress=%v", compress), func(t *testing.T) {
			stream := encodeStream(t, compress, fams, fams)
			intact, err := decodeAll(stream)
			if err != nil {
				t.Fatal(err)
			}
			// Payload-data byte ranges (frame headers excluded: a flipped
			// header byte fails its own way — bad flag, truncation — while a
			// flipped payload byte must be caught by CRC-32C of the
			// uncompressed bytes, or by the inflater before it).
			payload := map[int]bool{}
			off := len(Magic)
			for off < len(stream) {
				plen := int(binary.LittleEndian.Uint32(stream[off+1 : off+5]))
				for i := off + 9; i < off+9+plen; i++ {
					payload[i] = true
				}
				off += 9 + plen
			}
			for i := len(Magic); i < len(stream); i++ {
				mut := append([]byte(nil), stream...)
				mut[i] ^= 0x01
				got, err := decodeAll(mut)
				if err == nil {
					// A flip inside a DEFLATE header can be semantically
					// invisible (e.g. the BFINAL bit when the remaining
					// blocks are empty). That is harmless by construction —
					// but only if the decoded content is byte-identical.
					if len(got) != len(intact) {
						t.Fatalf("flip at byte %d decoded silently to %d samples, want %d",
							i, len(got), len(intact))
					}
					for j := range got {
						if got[j] != intact[j] {
							t.Fatalf("flip at byte %d silently altered sample %d: %q != %q",
								i, j, got[j], intact[j])
						}
					}
					continue
				}
				if payload[i] && !compress && !errors.Is(err, ErrChecksum) {
					t.Fatalf("flip at byte %d: got %v, want ErrChecksum", i, err)
				}
			}
		})
	}
}

// TestRemoteWriteEncoderRejectsOversizedBatch: the encoder refuses to build
// a frame the decoder would reject.
func TestRemoteWriteEncoderRejectsOversizedBatch(t *testing.T) {
	big := &expofmt.Family{Name: "big", Type: expofmt.TypeGauge}
	huge := make([]byte, 1<<20)
	for i := range huge {
		huge[i] = 'a' + byte(i%26)
	}
	for i := 0; i < 5; i++ {
		big.Metrics = append(big.Metrics, expofmt.Metric{
			Labels: labels.FromMap(map[string]string{
				labels.MetricName: "big",
				"pad":             string(huge),
				"i":               fmt.Sprint(i),
			}),
			Value: 1, TS: 1000,
		})
	}
	var buf bytes.Buffer
	err := NewEncoder(&buf, false).WriteBatch([]*expofmt.Family{big})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

// TestRemoteWriteDecoderPoolReuse: a released decoder must come back clean.
func TestRemoteWriteDecoderPoolReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		fams := randFamilies(rng, 1, 3)
		stream := encodeStream(t, i%2 == 0, fams)
		dec := NewDecoder(bytes.NewReader(stream))
		got, err := dec.Next()
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if len(flatten(got)) != len(flatten(fams)) {
			t.Fatalf("iter %d: wrong sample count", i)
		}
		if _, err := dec.Next(); err != io.EOF {
			t.Fatalf("iter %d: want EOF, got %v", i, err)
		}
		dec.Release()
	}
}
