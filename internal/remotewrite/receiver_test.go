package remotewrite

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/expofmt"
	"repro/internal/labels"
	"repro/internal/scrape"
	"repro/internal/tsdb"
)

func postStream(t testing.TB, rcv *Receiver, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/api/v1/write", bytes.NewReader(body))
	w := httptest.NewRecorder()
	rcv.ServeHTTP(w, req)
	return w
}

// TestIngestEndToEnd pushes frames into a real head and checks the samples
// land, the response accounts for them, and the status counters agree.
func TestIngestEndToEnd(t *testing.T) {
	db := tsdb.MustOpen(tsdb.Options{OutOfOrderWindow: 60_000})
	rcv := &Receiver{NewBatch: func() scrape.Batch { return db.Appender() }}

	rng := rand.New(rand.NewSource(1))
	b1 := randFamilies(rng, 2, 5)
	b2 := randFamilies(rng, 1, 5)
	w := postStream(t, rcv, encodeStream(t, true, b1, b2))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Status string `json:"status"`
		Data   struct {
			Frames   int `json:"frames"`
			Decoded  int `json:"decoded"`
			Appended int `json:"appended"`
		} `json:"data"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response: %v", err)
	}
	wantSamples := len(flatten(b1)) + len(flatten(b2))
	if resp.Status != "success" || resp.Data.Frames != 2 || resp.Data.Decoded != wantSamples {
		t.Fatalf("response %+v, want 2 frames / %d decoded", resp, wantSamples)
	}
	if resp.Data.Appended <= 0 || resp.Data.Appended > wantSamples {
		t.Fatalf("appended %d out of range (0, %d]", resp.Data.Appended, wantSamples)
	}

	// The head must actually hold the pushed series.
	m, err := labels.NewMatcher(labels.MatchEqual, labels.MetricName, b1[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	series, err := db.Select(0, int64(1)<<62, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) == 0 {
		t.Fatalf("no series %q in head after ingest", b1[0].Name)
	}

	st := rcv.Stats()
	if st.Requests != 1 || st.Frames != 2 || st.SamplesDecoded != uint64(wantSamples) {
		t.Fatalf("stats %+v", st)
	}
	if st.SamplesAppended != uint64(resp.Data.Appended) {
		t.Fatalf("stats appended %d, response said %d", st.SamplesAppended, resp.Data.Appended)
	}
}

// TestIngestRetryIdempotent resends an identical stream: with the
// out-of-order window on, the retry must append nothing and be reported as
// duplicates — the at-least-once push contract.
func TestIngestRetryIdempotent(t *testing.T) {
	db := tsdb.MustOpen(tsdb.Options{OutOfOrderWindow: 300_000})
	rcv := &Receiver{NewBatch: func() scrape.Batch { return db.Appender() }}

	fams := []*expofmt.Family{{Name: "push_total", Type: expofmt.TypeCounter}}
	for i := 0; i < 20; i++ {
		fams[0].Metrics = append(fams[0].Metrics, expofmt.Metric{
			Labels: labels.FromMap(map[string]string{
				labels.MetricName: "push_total",
				"instance":        fmt.Sprintf("n%d", i%4),
			}),
			Value: float64(i), TS: int64(1000 * (i + 1)),
		})
	}
	body := encodeStream(t, false, fams)

	first := postStream(t, rcv, body)
	if first.Code != http.StatusOK {
		t.Fatalf("first push: %d %s", first.Code, first.Body)
	}
	epoch := db.AppendEpoch()

	second := postStream(t, rcv, body)
	if second.Code != http.StatusOK {
		t.Fatalf("retry: %d %s", second.Code, second.Body)
	}
	var resp struct {
		Data struct {
			Appended int `json:"appended"`
		} `json:"data"`
	}
	if err := json.Unmarshal(second.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Data.Appended != 0 {
		t.Fatalf("retry appended %d samples, want 0", resp.Data.Appended)
	}
	if got := db.AppendEpoch(); got != epoch {
		t.Fatalf("retry moved the append epoch %d -> %d", epoch, got)
	}
	if st := rcv.Stats(); st.Duplicates != 20 {
		t.Fatalf("stats %+v, want 20 duplicates", st)
	}
}

// blockingBatch parks Commit until released, so a test can hold commit
// slots occupied deterministically.
type blockingBatch struct {
	n       int
	entered chan struct{}
	release chan struct{}
}

func (b *blockingBatch) Add(lset labels.Labels, t int64, v float64) { b.n++ }
func (b *blockingBatch) Commit() (int, error) {
	b.entered <- struct{}{}
	<-b.release
	return b.n, nil
}

// TestIngestBackpressure429 saturates the commit slots and checks the next
// request is refused up front with 429 + Retry-After, then succeeds once a
// slot frees up.
func TestIngestBackpressure429(t *testing.T) {
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	rcv := &Receiver{
		NewBatch:    func() scrape.Batch { return &blockingBatch{entered: entered, release: release} },
		MaxInflight: 2,
		RetryAfter:  3 * time.Second,
	}
	rng := rand.New(rand.NewSource(5))
	body := encodeStream(t, false, randFamilies(rng, 1, 3))

	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = postStream(t, rcv, body).Code
		}(i)
	}
	// Both slow requests are inside Commit, holding both slots.
	<-entered
	<-entered

	w := postStream(t, rcv, body)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated push: status %d, want 429", w.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}
	var errResp struct {
		Status string `json:"status"`
		Error  string `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &errResp); err != nil || errResp.Status != "error" {
		t.Fatalf("429 body %s (err %v)", w.Body, err)
	}

	close(release)
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("blocked request %d finished with %d", i, c)
		}
	}
	st := rcv.Stats()
	if st.Rejected429 != 1 {
		t.Fatalf("stats %+v, want 1 rejection", st)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight %d after drain, want 0", st.InFlight)
	}

	// Capacity is available again: a fresh push must not see 429. The
	// release channel is closed, so commits no longer block.
	for len(entered) > 0 {
		<-entered
	}
	if w := postStream(t, rcv, body); w.Code != http.StatusOK {
		t.Fatalf("post-drain push: status %d, want 200", w.Code)
	}
}

// TestIngestRejectsMissingTimestamp: scrape-style samples without explicit
// timestamps are a client error.
func TestIngestRejectsMissingTimestamp(t *testing.T) {
	db := tsdb.MustOpen(tsdb.Options{})
	rcv := &Receiver{NewBatch: func() scrape.Batch { return db.Appender() }}
	fams := []*expofmt.Family{{
		Name: "no_ts", Type: expofmt.TypeGauge,
		Metrics: []expofmt.Metric{{
			Labels: labels.FromMap(map[string]string{labels.MetricName: "no_ts"}),
			Value:  1, // TS zero: scrape-time semantics, invalid for push
		}},
	}}
	w := postStream(t, rcv, encodeStream(t, false, fams))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", w.Code)
	}
	if st := rcv.Stats(); st.BadRequests != 1 {
		t.Fatalf("stats %+v, want 1 bad request", st)
	}
}

// TestIngestBadStream: a garbage body is a 400, not a 500 or a hang.
func TestIngestBadStream(t *testing.T) {
	db := tsdb.MustOpen(tsdb.Options{})
	rcv := &Receiver{NewBatch: func() scrape.Batch { return db.Appender() }}
	for _, body := range [][]byte{
		[]byte("not a stream"),
		[]byte("CRW"),
		append([]byte(Magic), 0x02, 0, 0, 0, 0, 0, 0, 0, 0), // bad flag
	} {
		if w := postStream(t, rcv, body); w.Code != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, w.Code)
		}
	}
	// A truncated tail after a committed frame still reports the error —
	// and tells the client how many frames landed.
	rng := rand.New(rand.NewSource(11))
	good := encodeStream(t, false, randFamilies(rng, 1, 2))
	torn := append(append([]byte(nil), good...), 0x00, 0x05)
	w := postStream(t, rcv, torn)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("torn tail: status %d, want 400", w.Code)
	}
	if !bytes.Contains(w.Body.Bytes(), []byte("1 frames committed")) {
		t.Fatalf("torn-tail error does not report committed frames: %s", w.Body)
	}
}

type failingBatch struct{}

func (failingBatch) Add(lset labels.Labels, t int64, v float64) {}
func (failingBatch) Commit() (int, error)                       { return 0, errors.New("quorum lost") }

// TestIngestCommitFailure: storage-side commit errors are 503 (retryable),
// not 4xx.
func TestIngestCommitFailure(t *testing.T) {
	rcv := &Receiver{NewBatch: func() scrape.Batch { return failingBatch{} }}
	rng := rand.New(rand.NewSource(13))
	w := postStream(t, rcv, encodeStream(t, false, randFamilies(rng, 1, 2)))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", w.Code)
	}
	if st := rcv.Stats(); st.Failed != 1 {
		t.Fatalf("stats %+v, want 1 failed commit", st)
	}
}

// TestIngestMethodNotAllowed: only POST is served.
func TestIngestMethodNotAllowed(t *testing.T) {
	rcv := &Receiver{NewBatch: func() scrape.Batch { return failingBatch{} }}
	req := httptest.NewRequest(http.MethodGet, "/api/v1/write", nil)
	w := httptest.NewRecorder()
	rcv.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", w.Code)
	}
	if allow := w.Header().Get("Allow"); allow != http.MethodPost {
		t.Fatalf("Allow = %q, want POST", allow)
	}
}
