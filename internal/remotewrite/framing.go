// Package remotewrite implements the push-ingest wire protocol and HTTP
// receiver for the CEEMS stack: a Prometheus remote-write-style path that
// lets agents POST batches of samples instead of waiting to be scraped.
//
// # Framing
//
// A stream is the 4-byte magic "CRW1" followed by zero or more frames.
// Each frame is
//
//	flag   byte     0 = raw payload, 1 = DEFLATE-compressed payload
//	length uint32   little endian, byte count of the stored payload
//	crc    uint32   little endian, CRC-32C of the UNCOMPRESSED payload
//	data   [length]byte
//
// The payload is Prometheus text exposition format (internal/expofmt) with
// explicit millisecond timestamps — the same encoding the exporters and the
// scrape loop already speak, so one parser serves both ingest paths. The
// CRC covers the uncompressed bytes: a decompression bug or a torn
// compressed tail can never silently commit garbage. Frames are bounded by
// MaxFrame on both the stored and the decompressed size, so one request
// never buffers more than a frame of payload regardless of body size — the
// receiver decodes, commits and releases frame by frame.
//
// Decoders are pooled (NewDecoder / Release): the bufio reader, the DEFLATE
// reader and the scratch buffers are all reused across requests, keeping
// steady-state ingest allocation-free on the framing layer.
package remotewrite

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"repro/internal/expofmt"
)

// Magic starts every remote-write stream.
const Magic = "CRW1"

// MaxFrame bounds both the stored and the decompressed payload size of one
// frame. Senders must split batches that would exceed it.
const MaxFrame = 4 << 20

const (
	flagRaw     = 0
	flagDeflate = 1
)

// Framing errors. Decode failures wrap one of these so callers can
// distinguish a torn tail from corruption or a hostile frame.
var (
	ErrBadMagic      = errors.New("remotewrite: bad stream magic")
	ErrTruncated     = errors.New("remotewrite: truncated frame")
	ErrChecksum      = errors.New("remotewrite: frame checksum mismatch")
	ErrFrameTooLarge = errors.New("remotewrite: frame exceeds size limit")
	ErrBadFlag       = errors.New("remotewrite: unknown frame flag")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encoder writes a remote-write stream: the magic once, then one frame per
// WriteBatch call.
type Encoder struct {
	w          io.Writer
	compress   bool
	wroteMagic bool
	buf        bytes.Buffer // uncompressed exposition payload
	cbuf       bytes.Buffer // compressed payload
	fw         *flate.Writer
	head       [9]byte
}

// NewEncoder returns an Encoder on w. With compress set, frames carry
// DEFLATE-compressed payloads (falling back to raw when compression does
// not help).
func NewEncoder(w io.Writer, compress bool) *Encoder {
	return &Encoder{w: w, compress: compress}
}

// WriteBatch frames one batch of metric families and writes it out. Every
// sample must carry an explicit timestamp (Metric.TS != 0) — the receiver
// rejects frames with scrape-time samples.
func (e *Encoder) WriteBatch(fams []*expofmt.Family) error {
	if !e.wroteMagic {
		if _, err := io.WriteString(e.w, Magic); err != nil {
			return err
		}
		e.wroteMagic = true
	}
	e.buf.Reset()
	ew := expofmt.NewWriter(&e.buf)
	for _, f := range fams {
		if err := ew.WriteFamily(f); err != nil {
			return err
		}
	}
	if err := ew.Flush(); err != nil {
		return err
	}
	if e.buf.Len() > MaxFrame {
		return fmt.Errorf("%w: %d bytes (max %d); split the batch", ErrFrameTooLarge, e.buf.Len(), MaxFrame)
	}
	crc := crc32.Checksum(e.buf.Bytes(), castagnoli)
	flag := byte(flagRaw)
	payload := e.buf.Bytes()
	if e.compress {
		e.cbuf.Reset()
		if e.fw == nil {
			e.fw, _ = flate.NewWriter(&e.cbuf, flate.BestSpeed)
		} else {
			e.fw.Reset(&e.cbuf)
		}
		if _, err := e.fw.Write(payload); err != nil {
			return err
		}
		if err := e.fw.Close(); err != nil {
			return err
		}
		if e.cbuf.Len() < len(payload) {
			flag = flagDeflate
			payload = e.cbuf.Bytes()
		}
	}
	e.head[0] = flag
	binary.LittleEndian.PutUint32(e.head[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(e.head[5:9], crc)
	if _, err := e.w.Write(e.head[:]); err != nil {
		return err
	}
	_, err := e.w.Write(payload)
	return err
}

// Decoder reads a remote-write stream frame by frame. Obtain one with
// NewDecoder and return it with Release; the internal buffers are pooled.
type Decoder struct {
	br        *bufio.Reader
	fr        io.ReadCloser // pooled DEFLATE reader (flate.Resetter)
	stored    []byte        // frame payload as stored on the wire
	plain     bytes.Buffer  // decompressed payload
	readMagic bool
}

var decoderPool = sync.Pool{
	New: func() any {
		return &Decoder{br: bufio.NewReaderSize(nil, 64<<10)}
	},
}

// NewDecoder returns a pooled Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	d := decoderPool.Get().(*Decoder)
	d.br.Reset(r)
	d.readMagic = false
	return d
}

// Release resets the Decoder and returns it to the pool. The Decoder must
// not be used afterwards.
func (d *Decoder) Release() {
	d.br.Reset(nil)
	d.plain.Reset()
	decoderPool.Put(d)
}

// Next decodes one frame and parses its payload. It returns io.EOF exactly
// at a frame boundary (the clean end of the stream); an EOF anywhere else
// surfaces as an error wrapping ErrTruncated.
func (d *Decoder) Next() ([]*expofmt.Family, error) {
	if !d.readMagic {
		var magic [4]byte
		if _, err := io.ReadFull(d.br, magic[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil, fmt.Errorf("%w: short magic", ErrTruncated)
			}
			return nil, err
		}
		if string(magic[:]) != Magic {
			return nil, fmt.Errorf("%w: got %q", ErrBadMagic, magic[:])
		}
		d.readMagic = true
	}
	var head [9]byte
	if _, err := io.ReadFull(d.br, head[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF // clean end between frames
		}
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: short frame header", ErrTruncated)
		}
		return nil, err
	}
	flag := head[0]
	length := binary.LittleEndian.Uint32(head[1:5])
	crc := binary.LittleEndian.Uint32(head[5:9])
	if flag != flagRaw && flag != flagDeflate {
		return nil, fmt.Errorf("%w: 0x%02x", ErrBadFlag, flag)
	}
	if length > MaxFrame {
		return nil, fmt.Errorf("%w: stored %d bytes (max %d)", ErrFrameTooLarge, length, MaxFrame)
	}
	if cap(d.stored) < int(length) {
		d.stored = make([]byte, length)
	}
	d.stored = d.stored[:length]
	if _, err := io.ReadFull(d.br, d.stored); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: frame payload cut short", ErrTruncated)
		}
		return nil, err
	}
	payload := d.stored
	if flag == flagDeflate {
		if d.fr == nil {
			d.fr = flate.NewReader(bytes.NewReader(d.stored)).(io.ReadCloser)
		} else {
			if err := d.fr.(flate.Resetter).Reset(bytes.NewReader(d.stored), nil); err != nil {
				return nil, err
			}
		}
		d.plain.Reset()
		// +1 so a payload that would exceed the cap is detected rather
		// than silently truncated (decompression-bomb guard).
		n, err := io.Copy(&d.plain, io.LimitReader(d.fr, MaxFrame+1))
		if err != nil {
			return nil, fmt.Errorf("remotewrite: decompress frame: %w", err)
		}
		if n > MaxFrame {
			return nil, fmt.Errorf("%w: decompressed past %d bytes", ErrFrameTooLarge, MaxFrame)
		}
		payload = d.plain.Bytes()
	}
	if got := crc32.Checksum(payload, castagnoli); got != crc {
		return nil, fmt.Errorf("%w: got %08x want %08x", ErrChecksum, got, crc)
	}
	fams, err := expofmt.Parse(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("remotewrite: parse frame payload: %w", err)
	}
	return fams, nil
}
