package resourcemanager

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/model"
)

type stubSource []model.Unit

func (s stubSource) Units(cutoff time.Time) []model.Unit {
	var out []model.Unit
	for _, u := range s {
		if u.EndedAt == 0 || u.EndedAt >= cutoff.UnixMilli() {
			out = append(out, u)
		}
	}
	return out
}

func TestLocalFetcher(t *testing.T) {
	src := stubSource{
		{UUID: "c/slurm/1", ID: "1", User: "a", EndedAt: 0},
		{UUID: "c/slurm/2", ID: "2", User: "b", EndedAt: 1000},
	}
	f := &Local{Cluster: "c", Kind: model.ManagerSLURM, Source: src}
	if f.ClusterID() != "c" || f.Manager() != model.ManagerSLURM {
		t.Error("metadata wrong")
	}
	units, err := f.FetchUnits(context.Background(), time.UnixMilli(0))
	if err != nil || len(units) != 2 {
		t.Fatalf("units = %d, %v", len(units), err)
	}
	units, _ = f.FetchUnits(context.Background(), time.UnixMilli(5000))
	if len(units) != 1 {
		t.Errorf("cutoff units = %d", len(units))
	}
}

func TestSlurmDBDFetcherErrors(t *testing.T) {
	// Server returning garbage.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("not json"))
	}))
	defer bad.Close()
	f := &SlurmDBD{Cluster: "c", BaseURL: bad.URL}
	if _, err := f.FetchUnits(context.Background(), time.Unix(0, 0)); err == nil {
		t.Error("garbage response accepted")
	}
	// Server returning 500.
	srvErr := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", 500)
	}))
	defer srvErr.Close()
	f = &SlurmDBD{Cluster: "c", BaseURL: srvErr.URL}
	if _, err := f.FetchUnits(context.Background(), time.Unix(0, 0)); err == nil {
		t.Error("500 accepted")
	}
	// Unreachable server.
	f = &SlurmDBD{Cluster: "c", BaseURL: "http://127.0.0.1:1"}
	if _, err := f.FetchUnits(context.Background(), time.Unix(0, 0)); err == nil {
		t.Error("unreachable server accepted")
	}
}

func TestSlurmDBDFetcherPassesSince(t *testing.T) {
	var gotSince string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotSince = r.URL.Query().Get("since")
		json.NewEncoder(w).Encode([]model.Unit{{UUID: "c/slurm/9", ID: "9"}})
	}))
	defer srv.Close()
	f := &SlurmDBD{Cluster: "c", BaseURL: srv.URL}
	units, err := f.FetchUnits(context.Background(), time.UnixMilli(123456))
	if err != nil || len(units) != 1 {
		t.Fatalf("units = %d, %v", len(units), err)
	}
	if gotSince != "123456" {
		t.Errorf("since = %q", gotSince)
	}
}
