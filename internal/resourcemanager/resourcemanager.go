// Package resourcemanager defines the abstraction that makes CEEMS
// "resource manager agnostic": a Fetcher yields compute units in the
// unified schema regardless of whether they are SLURM batch jobs, Openstack
// VMs or Kubernetes pods (paper §II.B.b). Adapters are provided for the
// three simulated managers, including an HTTP adapter that consumes the
// slurmdbd-style REST API exactly as the CEEMS API server would in
// production.
package resourcemanager

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/model"
)

// Fetcher lists the compute units of one cluster.
type Fetcher interface {
	// ClusterID identifies the cluster the units belong to.
	ClusterID() string
	// Manager names the resource-manager kind.
	Manager() model.ResourceManager
	// FetchUnits returns units active at or after the cutoff.
	FetchUnits(ctx context.Context, since time.Time) ([]model.Unit, error)
}

// SchedulerUnits is the shape shared by the in-process simulators
// (slurmsim.Scheduler, openstacksim.Manager, k8ssim.Manager).
type SchedulerUnits interface {
	Units(cutoff time.Time) []model.Unit
}

// Local adapts an in-process simulator.
type Local struct {
	Cluster string
	Kind    model.ResourceManager
	Source  SchedulerUnits
}

// ClusterID implements Fetcher.
func (l *Local) ClusterID() string { return l.Cluster }

// Manager implements Fetcher.
func (l *Local) Manager() model.ResourceManager { return l.Kind }

// FetchUnits implements Fetcher.
func (l *Local) FetchUnits(_ context.Context, since time.Time) ([]model.Unit, error) {
	return l.Source.Units(since), nil
}

// SlurmDBD fetches units over the slurmdbd-style REST API.
type SlurmDBD struct {
	Cluster string
	// BaseURL of the DBD endpoint, e.g. "http://dbd:6819".
	BaseURL string
	Client  *http.Client
}

// ClusterID implements Fetcher.
func (s *SlurmDBD) ClusterID() string { return s.Cluster }

// Manager implements Fetcher.
func (s *SlurmDBD) Manager() model.ResourceManager { return model.ManagerSLURM }

// FetchUnits implements Fetcher by querying /slurmdbd/v1/jobs.
func (s *SlurmDBD) FetchUnits(ctx context.Context, since time.Time) ([]model.Unit, error) {
	url := fmt.Sprintf("%s/slurmdbd/v1/jobs?since=%d", s.BaseURL, since.UnixMilli())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	client := s.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("resourcemanager: slurmdbd: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("resourcemanager: slurmdbd returned %s", resp.Status)
	}
	var units []model.Unit
	if err := json.NewDecoder(resp.Body).Decode(&units); err != nil {
		return nil, fmt.Errorf("resourcemanager: slurmdbd decode: %w", err)
	}
	return units, nil
}
