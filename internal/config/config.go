// Package config defines the single-YAML-file configuration shared by all
// CEEMS components (paper §II.D: "All the CEEMS components can be
// configured in a single YAML file where each component will read its
// relevant configuration").
package config

import (
	"fmt"
	"os"
	"time"

	"repro/internal/yamlite"
)

// Config is the root of the unified configuration file.
type Config struct {
	Cluster   ClusterConfig   `yaml:"cluster"`
	Exporter  ExporterConfig  `yaml:"exporter"`
	TSDB      TSDBConfig      `yaml:"tsdb"`
	Thanos    ThanosConfig    `yaml:"thanos"`
	APIServer APIServerConfig `yaml:"api_server"`
	LB        LBConfig        `yaml:"lb"`
	Emissions EmissionsConfig `yaml:"emissions"`
	Sim       SimConfig       `yaml:"sim"`
}

// ClusterConfig describes the monitored cluster.
type ClusterConfig struct {
	Name string `yaml:"name"`
	// Zone is the grid zone for emission factors.
	Zone string `yaml:"zone"`
}

// ExporterConfig configures the per-node exporter.
type ExporterConfig struct {
	Listen string `yaml:"listen"`
	// Collectors to disable (all enabled by default).
	DisableCollectors []string `yaml:"disable_collectors"`
	BasicAuthUser     string   `yaml:"basic_auth_user"`
	BasicAuthPassword string   `yaml:"basic_auth_password"`
}

// TSDBConfig configures the hot TSDB and scraping.
type TSDBConfig struct {
	ScrapeInterval  time.Duration `yaml:"scrape_interval"`
	RuleInterval    time.Duration `yaml:"rule_interval"`
	RetentionPeriod time.Duration `yaml:"retention"`
	RateWindow      string        `yaml:"rate_window"`
}

// ThanosConfig configures long-term storage.
type ThanosConfig struct {
	Dir           string        `yaml:"dir"`
	ShipInterval  time.Duration `yaml:"ship_interval"`
	HeadRetention time.Duration `yaml:"head_retention"`
	Downsample    time.Duration `yaml:"downsample"`
}

// APIServerConfig configures the CEEMS API server.
type APIServerConfig struct {
	Listen          string        `yaml:"listen"`
	DataDir         string        `yaml:"data_dir"`
	BackupDir       string        `yaml:"backup_dir"`
	UpdateInterval  time.Duration `yaml:"update_interval"`
	BackupInterval  time.Duration `yaml:"backup_interval"`
	ShortUnitCutoff time.Duration `yaml:"short_unit_cutoff"`
	AdminUsers      []string      `yaml:"admin_users"`
}

// LBConfig configures the load balancer.
type LBConfig struct {
	Listen   string   `yaml:"listen"`
	Backends []string `yaml:"backends"`
	Strategy string   `yaml:"strategy"`
}

// EmissionsConfig selects emission factor providers in priority order.
type EmissionsConfig struct {
	Providers  []string      `yaml:"providers"` // "rte", "emaps", "owid"
	RTEURL     string        `yaml:"rte_url"`
	EMapsURL   string        `yaml:"emaps_url"`
	EMapsToken string        `yaml:"emaps_token"`
	CacheTTL   time.Duration `yaml:"cache_ttl"`
}

// SimConfig parameterizes the simulated platform (cluster_sim only).
type SimConfig struct {
	IntelNodes       int     `yaml:"intel_nodes"`
	AMDNodes         int     `yaml:"amd_nodes"`
	GPUIncludedNodes int     `yaml:"gpu_included_nodes"`
	GPUExcludedNodes int     `yaml:"gpu_excluded_nodes"`
	Users            int     `yaml:"users"`
	Projects         int     `yaml:"projects"`
	JobsPerDay       float64 `yaml:"jobs_per_day"`
	Seed             int64   `yaml:"seed"`
}

// Default returns a config with sane defaults for a small simulation.
func Default() Config {
	return Config{
		Cluster: ClusterConfig{Name: "sim", Zone: "FR"},
		TSDB: TSDBConfig{
			ScrapeInterval: 15 * time.Second, RuleInterval: time.Minute,
			RetentionPeriod: 15 * 24 * time.Hour, RateWindow: "2m",
		},
		Thanos: ThanosConfig{ShipInterval: 30 * time.Minute, HeadRetention: 2 * time.Hour},
		APIServer: APIServerConfig{
			UpdateInterval: 5 * time.Minute, BackupInterval: time.Hour,
			ShortUnitCutoff: time.Minute,
		},
		LB:        LBConfig{Strategy: "round-robin"},
		Emissions: EmissionsConfig{Providers: []string{"owid"}, CacheTTL: 5 * time.Minute},
		Sim: SimConfig{
			IntelNodes: 4, AMDNodes: 2, GPUIncludedNodes: 1, GPUExcludedNodes: 1,
			Users: 8, Projects: 3, JobsPerDay: 600, Seed: 1,
		},
	}
}

// Load reads and validates a config file, applying defaults for absent
// fields.
func Load(path string) (Config, error) {
	cfg := Default()
	data, err := os.ReadFile(path)
	if err != nil {
		return cfg, err
	}
	if err := yamlite.Unmarshal(data, &cfg); err != nil {
		return cfg, fmt.Errorf("config: %s: %w", path, err)
	}
	return cfg, cfg.Validate()
}

// Parse decodes a config from bytes (for tests and embedded defaults).
func Parse(data []byte) (Config, error) {
	cfg := Default()
	if err := yamlite.Unmarshal(data, &cfg); err != nil {
		return cfg, err
	}
	return cfg, cfg.Validate()
}

// Validate checks cross-field invariants.
func (c Config) Validate() error {
	if c.Cluster.Name == "" {
		return fmt.Errorf("config: cluster.name required")
	}
	if c.TSDB.ScrapeInterval <= 0 {
		return fmt.Errorf("config: tsdb.scrape_interval must be positive")
	}
	if c.TSDB.RuleInterval < c.TSDB.ScrapeInterval {
		return fmt.Errorf("config: tsdb.rule_interval must be >= scrape_interval")
	}
	switch c.LB.Strategy {
	case "", "round-robin", "least-connection":
	default:
		return fmt.Errorf("config: lb.strategy must be round-robin or least-connection")
	}
	for _, p := range c.Emissions.Providers {
		switch p {
		case "owid", "rte", "emaps":
		default:
			return fmt.Errorf("config: unknown emissions provider %q", p)
		}
	}
	if c.Sim.JobsPerDay < 0 {
		return fmt.Errorf("config: sim.jobs_per_day must be non-negative")
	}
	return nil
}
