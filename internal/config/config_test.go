package config

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

const sampleYAML = `
cluster:
  name: jean-zay
  zone: FR
exporter:
  listen: ":9100"
  disable_collectors: [gpumap]
  basic_auth_user: ceems
  basic_auth_password: secret
tsdb:
  scrape_interval: 15s
  rule_interval: 1m
  retention: 360h
  rate_window: 2m
thanos:
  dir: /var/lib/thanos
  ship_interval: 30m
  head_retention: 2h
api_server:
  listen: ":9200"
  update_interval: 5m
  short_unit_cutoff: 1m
  admin_users: [root, ops]
lb:
  listen: ":9090"
  backends: ["http://tsdb-a:9090", "http://tsdb-b:9090"]
  strategy: least-connection
emissions:
  providers: [rte, owid]
  rte_url: "http://rte-mock:8080"
  cache_ttl: 5m
sim:
  intel_nodes: 10
  users: 16
  jobs_per_day: 5000
`

func TestParseFull(t *testing.T) {
	cfg, err := Parse([]byte(sampleYAML))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if cfg.Cluster.Name != "jean-zay" || cfg.Cluster.Zone != "FR" {
		t.Errorf("cluster = %+v", cfg.Cluster)
	}
	if cfg.Exporter.BasicAuthUser != "ceems" || len(cfg.Exporter.DisableCollectors) != 1 {
		t.Errorf("exporter = %+v", cfg.Exporter)
	}
	if cfg.TSDB.ScrapeInterval != 15*time.Second || cfg.TSDB.RetentionPeriod != 360*time.Hour {
		t.Errorf("tsdb = %+v", cfg.TSDB)
	}
	if cfg.LB.Strategy != "least-connection" || len(cfg.LB.Backends) != 2 {
		t.Errorf("lb = %+v", cfg.LB)
	}
	if len(cfg.Emissions.Providers) != 2 || cfg.Emissions.Providers[0] != "rte" {
		t.Errorf("emissions = %+v", cfg.Emissions)
	}
	if len(cfg.APIServer.AdminUsers) != 2 {
		t.Errorf("admins = %v", cfg.APIServer.AdminUsers)
	}
	// Defaults fill unspecified fields.
	if cfg.Sim.Projects != 3 {
		t.Errorf("default projects = %d", cfg.Sim.Projects)
	}
	if cfg.Sim.IntelNodes != 10 || cfg.Sim.JobsPerDay != 5000 {
		t.Errorf("sim overrides lost: %+v", cfg.Sim)
	}
}

func TestDefaults(t *testing.T) {
	cfg := Default()
	if err := cfg.Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
}

func TestValidation(t *testing.T) {
	bad := []string{
		"cluster:\n  name: \"\"",
		"cluster:\n  name: x\ntsdb:\n  scrape_interval: 0s",
		"cluster:\n  name: x\ntsdb:\n  scrape_interval: 1m\n  rule_interval: 15s",
		"cluster:\n  name: x\nlb:\n  strategy: random",
		"cluster:\n  name: x\nemissions:\n  providers: [carrier-pigeon]",
		"cluster:\n  name: x\nsim:\n  jobs_per_day: -5",
	}
	for i, y := range bad {
		if _, err := Parse([]byte(y)); err == nil {
			t.Errorf("case %d accepted: %s", i, y)
		}
	}
}

func TestLoadFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ceems.yaml")
	if err := os.WriteFile(path, []byte(sampleYAML), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if cfg.Cluster.Name != "jean-zay" {
		t.Error("file config not applied")
	}
	if _, err := Load(filepath.Join(dir, "missing.yaml")); err == nil {
		t.Error("missing file accepted")
	}
}
