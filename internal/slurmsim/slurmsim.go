// Package slurmsim simulates the SLURM batch scheduler substrate: job
// submission, FIFO scheduling with backfill over partitioned nodes, cgroup
// accounting via the hw node simulator, and a slurmdbd-like job-accounting
// API the CEEMS API server polls ("CEEMS API server fetches the job data
// from SLURM DBD periodically", paper §II.C).
package slurmsim

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/hw"
	"repro/internal/model"
)

// Partition groups nodes under a scheduling queue, as on Jean-Zay
// (cpu_p1, gpu_p13, ...).
type Partition struct {
	Name  string
	Nodes []*hw.Node
}

// JobSpec describes a job submission.
type JobSpec struct {
	Name        string
	User        string
	Account     string // SLURM accounting project
	Partition   string
	Nodes       int // number of nodes; 0 means 1
	CPUsPerNode int
	MemPerNode  int64
	GPUsPerNode int
	TimeLimit   time.Duration // walltime limit; exceeded jobs end in timeout
	Duration    time.Duration // actual runtime
	// Utilization profiles forwarded to the hardware simulator.
	CPUUtil func(elapsed time.Duration) float64
	MemUtil func(elapsed time.Duration) float64
	GPUUtil func(elapsed time.Duration) float64
	// ExitCode of the job when it completes normally.
	ExitCode int
}

// Job is a scheduled or finished job.
type Job struct {
	ID   int64
	Spec JobSpec

	State      model.UnitState
	SubmitTime time.Time
	StartTime  time.Time
	EndTime    time.Time
	NodeNames  []string
	// GPUOrdinals per node index; CEEMS must store this map because SLURM
	// does not expose it post-mortem (paper §II.A.d).
	GPUOrdinals map[string][]int
	// Truth aggregates the hardware ground-truth energy after completion.
	Truth hw.WorkloadEnergy
}

// CgroupID returns the cgroup leaf name used on every allocated node.
func (j *Job) CgroupID() string { return fmt.Sprintf("job_%d", j.ID) }

// Scheduler is the simulated SLURM controller. Advance drives simulated
// time; all other methods are safe for concurrent use.
type Scheduler struct {
	Cluster string

	mu         sync.Mutex
	now        time.Time
	partitions map[string]*Partition
	nodeFree   map[string]*nodeCapacity // by node name
	nodeByName map[string]*hw.Node
	nextID     int64
	pending    []*Job
	running    map[int64]*Job
	finished   []*Job
	// finishedByID provides O(1) lookups for the DBD API.
	finishedByID map[int64]*Job
}

type nodeCapacity struct {
	cpusFree int
	memFree  int64
	gpusFree []bool // per ordinal
}

// NewScheduler creates a scheduler over the given partitions.
func NewScheduler(cluster string, start time.Time, parts ...*Partition) (*Scheduler, error) {
	s := &Scheduler{
		Cluster:      cluster,
		now:          start,
		partitions:   map[string]*Partition{},
		nodeFree:     map[string]*nodeCapacity{},
		nodeByName:   map[string]*hw.Node{},
		running:      map[int64]*Job{},
		finishedByID: map[int64]*Job{},
	}
	for _, p := range parts {
		if _, dup := s.partitions[p.Name]; dup {
			return nil, fmt.Errorf("slurmsim: duplicate partition %q", p.Name)
		}
		s.partitions[p.Name] = p
		for _, n := range p.Nodes {
			name := n.Spec.Name
			if _, dup := s.nodeByName[name]; dup {
				return nil, fmt.Errorf("slurmsim: duplicate node %q", name)
			}
			s.nodeByName[name] = n
			s.nodeFree[name] = &nodeCapacity{
				cpusFree: n.Spec.TotalCPUs(),
				memFree:  n.Spec.MemBytes,
				gpusFree: make([]bool, len(n.Spec.GPUs)),
			}
			for i := range s.nodeFree[name].gpusFree {
				s.nodeFree[name].gpusFree[i] = true
			}
		}
	}
	return s, nil
}

// Now returns the simulated time.
func (s *Scheduler) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Node returns a node by name.
func (s *Scheduler) Node(name string) (*hw.Node, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodeByName[name]
	return n, ok
}

// Nodes returns all nodes sorted by name.
func (s *Scheduler) Nodes() []*hw.Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.nodeByName))
	for n := range s.nodeByName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*hw.Node, len(names))
	for i, n := range names {
		out[i] = s.nodeByName[n]
	}
	return out
}

// Submit queues a job, returning it with an assigned ID.
func (s *Scheduler) Submit(spec JobSpec) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.partitions[spec.Partition]
	if !ok {
		return nil, fmt.Errorf("slurmsim: unknown partition %q", spec.Partition)
	}
	if spec.Nodes <= 0 {
		spec.Nodes = 1
	}
	if spec.CPUsPerNode <= 0 {
		return nil, fmt.Errorf("slurmsim: job must request CPUs")
	}
	// Reject jobs that can never fit.
	fits := 0
	for _, n := range p.Nodes {
		if spec.CPUsPerNode <= n.Spec.TotalCPUs() &&
			spec.MemPerNode <= n.Spec.MemBytes &&
			spec.GPUsPerNode <= len(n.Spec.GPUs) {
			fits++
		}
	}
	if fits < spec.Nodes {
		return nil, fmt.Errorf("slurmsim: request exceeds partition %q capacity", spec.Partition)
	}
	s.nextID++
	j := &Job{
		ID: s.nextID, Spec: spec,
		State: model.UnitPending, SubmitTime: s.now,
		GPUOrdinals: map[string][]int{},
	}
	s.pending = append(s.pending, j)
	return j, nil
}

// Advance moves simulated time forward by dt: nodes advance, finished jobs
// are reaped, and pending jobs are scheduled (FIFO with backfill — a later
// job may start if an earlier one cannot).
func (s *Scheduler) Advance(dt time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = s.now.Add(dt)

	// Advance hardware first so ground truth includes this step.
	for _, n := range s.nodeByName {
		n.Advance(dt)
	}

	// Reap jobs whose runtime (or time limit) elapsed.
	for id, j := range s.running {
		elapsed := s.now.Sub(j.StartTime)
		limit := j.Spec.Duration
		timedOut := false
		if j.Spec.TimeLimit > 0 && j.Spec.TimeLimit < limit {
			limit = j.Spec.TimeLimit
			timedOut = true
		}
		if elapsed < limit {
			continue
		}
		for _, nodeName := range j.NodeNames {
			node := s.nodeByName[nodeName]
			te := node.RemoveWorkload(j.CgroupID())
			j.Truth.HostJoules += te.HostJoules
			j.Truth.GPUJoules += te.GPUJoules
			j.Truth.CPUSeconds += te.CPUSeconds
			cap := s.nodeFree[nodeName]
			cap.cpusFree += j.Spec.CPUsPerNode
			cap.memFree += j.Spec.MemPerNode
			for _, ord := range j.GPUOrdinals[nodeName] {
				cap.gpusFree[ord] = true
			}
		}
		j.EndTime = s.now
		switch {
		case timedOut:
			j.State = model.UnitTimeout
		case j.Spec.ExitCode != 0:
			j.State = model.UnitFailed
		default:
			j.State = model.UnitCompleted
		}
		delete(s.running, id)
		s.finished = append(s.finished, j)
		s.finishedByID[j.ID] = j
	}

	// Schedule pending jobs (FIFO with backfill).
	var stillPending []*Job
	started := map[string]bool{}
	for _, j := range s.pending {
		if s.tryStartLocked(j) {
			for _, nn := range j.NodeNames {
				started[nn] = true
			}
			continue
		}
		stillPending = append(stillPending, j)
	}
	s.pending = stillPending
	// Materialize cgroup trees of freshly-started jobs so exporters see
	// them on this tick.
	for nn := range started {
		s.nodeByName[nn].FlushFiles()
	}
}

// tryStartLocked attempts to place the job now. Caller holds s.mu.
func (s *Scheduler) tryStartLocked(j *Job) bool {
	p := s.partitions[j.Spec.Partition]
	var chosen []string
	for _, n := range p.Nodes {
		cap := s.nodeFree[n.Spec.Name]
		if cap.cpusFree < j.Spec.CPUsPerNode || cap.memFree < j.Spec.MemPerNode {
			continue
		}
		free := 0
		for _, f := range cap.gpusFree {
			if f {
				free++
			}
		}
		if free < j.Spec.GPUsPerNode {
			continue
		}
		chosen = append(chosen, n.Spec.Name)
		if len(chosen) == j.Spec.Nodes {
			break
		}
	}
	if len(chosen) < j.Spec.Nodes {
		return false
	}
	for _, nodeName := range chosen {
		cap := s.nodeFree[nodeName]
		cap.cpusFree -= j.Spec.CPUsPerNode
		cap.memFree -= j.Spec.MemPerNode
		var ords []int
		for ord, f := range cap.gpusFree {
			if f && len(ords) < j.Spec.GPUsPerNode {
				cap.gpusFree[ord] = false
				ords = append(ords, ord)
			}
		}
		j.GPUOrdinals[nodeName] = ords
		node := s.nodeByName[nodeName]
		w := &hw.Workload{
			ID:          j.CgroupID(),
			CPUs:        j.Spec.CPUsPerNode,
			MemLimit:    j.Spec.MemPerNode,
			GPUOrdinals: ords,
			CPUUtil:     j.Spec.CPUUtil,
			MemUtil:     j.Spec.MemUtil,
			GPUUtil:     j.Spec.GPUUtil,
		}
		if err := node.AddWorkload(w); err != nil {
			// Capacity bookkeeping guarantees this cannot happen; a panic
			// here means the invariant broke.
			panic(fmt.Sprintf("slurmsim: placement invariant violated: %v", err))
		}
	}
	j.NodeNames = chosen
	j.StartTime = s.now
	j.State = model.UnitRunning
	s.running[j.ID] = j
	return true
}

// GPUBindingsOnNode returns, for running jobs on the node, the map of
// manager-native job ID to bound GPU ordinals — the information the CEEMS
// exporter publishes as ceems_compute_unit_gpu_index_flag.
func (s *Scheduler) GPUBindingsOnNode(nodeName string) map[string][]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[string][]int{}
	for _, j := range s.running {
		ords, ok := j.GPUOrdinals[nodeName]
		if !ok || len(ords) == 0 {
			continue
		}
		out[strconv.FormatInt(j.ID, 10)] = append([]int(nil), ords...)
	}
	return out
}

// Stats summarizes scheduler state.
type Stats struct {
	Pending, Running, Finished int
}

// Stats returns current queue counts.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Pending: len(s.pending), Running: len(s.running), Finished: len(s.finished)}
}

// JobsSince returns all jobs that were running at or after the cutoff,
// plus everything still pending/running — the shape of a slurmdbd
// accounting query window.
func (s *Scheduler) JobsSince(cutoff time.Time) []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Job
	for _, j := range s.pending {
		out = append(out, j)
	}
	for _, j := range s.running {
		out = append(out, j)
	}
	for _, j := range s.finished {
		if !j.EndTime.Before(cutoff) {
			out = append(out, j)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Units converts jobs to the unified compute-unit schema.
func (s *Scheduler) Units(cutoff time.Time) []model.Unit {
	jobs := s.JobsSince(cutoff)
	now := s.Now()
	out := make([]model.Unit, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, jobToUnit(s.Cluster, j, now))
	}
	return out
}

func jobToUnit(cluster string, j *Job, now time.Time) model.Unit {
	id := strconv.FormatInt(j.ID, 10)
	u := model.Unit{
		UUID:        model.UnitUUID(cluster, model.ManagerSLURM, id),
		ID:          id,
		Cluster:     cluster,
		Manager:     model.ManagerSLURM,
		Name:        j.Spec.Name,
		User:        j.Spec.User,
		Project:     j.Spec.Account,
		Partition:   j.Spec.Partition,
		State:       j.State,
		CreatedAt:   j.SubmitTime.UnixMilli(),
		CPUs:        j.Spec.CPUsPerNode * max(j.Spec.Nodes, 1),
		MemoryBytes: j.Spec.MemPerNode * int64(max(j.Spec.Nodes, 1)),
		GPUs:        j.Spec.GPUsPerNode * max(j.Spec.Nodes, 1),
		Nodes:       j.NodeNames,
		ExitCode:    j.Spec.ExitCode,
	}
	for _, node := range j.NodeNames {
		u.GPUOrdinals = append(u.GPUOrdinals, j.GPUOrdinals[node]...)
	}
	if !j.StartTime.IsZero() {
		u.StartedAt = j.StartTime.UnixMilli()
		end := now
		if !j.EndTime.IsZero() {
			end = j.EndTime
			u.EndedAt = j.EndTime.UnixMilli()
		}
		u.ElapsedSec = int64(end.Sub(j.StartTime).Seconds())
	}
	return u
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// DBDHandler serves the slurmdbd-like REST API:
//
//	GET /slurmdbd/v1/jobs?since=<unix_ms>  → JSON array of units
//	GET /slurmdbd/v1/stats                 → queue counts
func (s *Scheduler) DBDHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/slurmdbd/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		cutoff := time.Unix(0, 0)
		if v := r.URL.Query().Get("since"); v != "" {
			ms, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				http.Error(w, "bad since parameter", http.StatusBadRequest)
				return
			}
			cutoff = time.UnixMilli(ms)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.Units(cutoff))
	})
	mux.HandleFunc("/slurmdbd/v1/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.Stats())
	})
	return mux
}
