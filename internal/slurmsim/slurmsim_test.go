package slurmsim

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/model"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func newCluster(t *testing.T, nNodes int) *Scheduler {
	t.Helper()
	var nodes []*hw.Node
	for i := 0; i < nNodes; i++ {
		spec := hw.DefaultIntelSpec(nodeName(i))
		spec.NoiseFrac = 0
		n, err := hw.NewNode(spec, t0)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	s, err := NewScheduler("test", t0, &Partition{Name: "cpu", Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func nodeName(i int) string { return "node" + string(rune('a'+i)) }

func TestSubmitAndRun(t *testing.T) {
	s := newCluster(t, 2)
	j, err := s.Submit(JobSpec{
		Name: "train", User: "alice", Account: "projA", Partition: "cpu",
		CPUsPerNode: 32, MemPerNode: 64 << 30, Duration: time.Minute,
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if j.State != model.UnitPending {
		t.Errorf("state = %s", j.State)
	}
	s.Advance(15 * time.Second)
	if j.State != model.UnitRunning || len(j.NodeNames) != 1 {
		t.Fatalf("job not started: %s %v", j.State, j.NodeNames)
	}
	// Cgroup exists on the node.
	node, _ := s.Node(j.NodeNames[0])
	if !node.FS.Exists("/sys/fs/cgroup/system.slice/slurmstepd.scope/job_1/cpu.stat") {
		t.Error("cgroup missing")
	}
	// Run to completion (need elapsed >= 60s after start at t=15).
	for i := 0; i < 4; i++ {
		s.Advance(15 * time.Second)
	}
	if j.State != model.UnitCompleted {
		t.Fatalf("state = %s, want completed", j.State)
	}
	if j.Truth.CPUSeconds <= 0 || j.Truth.HostJoules <= 0 {
		t.Errorf("truth not accumulated: %+v", j.Truth)
	}
	if node.NumWorkloads() != 0 {
		t.Error("workload not removed")
	}
	st := s.Stats()
	if st.Finished != 1 || st.Running != 0 || st.Pending != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestQueueingWhenFull(t *testing.T) {
	s := newCluster(t, 1) // 64 cpus
	j1, _ := s.Submit(JobSpec{User: "u", Account: "a", Partition: "cpu",
		CPUsPerNode: 64, MemPerNode: 1 << 30, Duration: time.Minute})
	j2, _ := s.Submit(JobSpec{User: "u", Account: "a", Partition: "cpu",
		CPUsPerNode: 64, MemPerNode: 1 << 30, Duration: time.Minute})
	s.Advance(15 * time.Second)
	if j1.State != model.UnitRunning || j2.State != model.UnitPending {
		t.Fatalf("states = %s, %s", j1.State, j2.State)
	}
	// j1 completes at t=75 (started t=15); j2 starts on the same tick.
	for i := 0; i < 5; i++ {
		s.Advance(15 * time.Second)
	}
	if j1.State != model.UnitCompleted {
		t.Errorf("j1 = %s", j1.State)
	}
	if j2.State != model.UnitRunning {
		t.Errorf("j2 = %s", j2.State)
	}
}

func TestBackfill(t *testing.T) {
	s := newCluster(t, 1) // 64 cpus
	s.Submit(JobSpec{User: "u", Account: "a", Partition: "cpu",
		CPUsPerNode: 48, MemPerNode: 1 << 30, Duration: 10 * time.Minute})
	big, _ := s.Submit(JobSpec{User: "u", Account: "a", Partition: "cpu",
		CPUsPerNode: 64, MemPerNode: 1 << 30, Duration: time.Minute})
	small, _ := s.Submit(JobSpec{User: "u", Account: "a", Partition: "cpu",
		CPUsPerNode: 16, MemPerNode: 1 << 30, Duration: time.Minute})
	s.Advance(15 * time.Second)
	if big.State != model.UnitPending {
		t.Errorf("big should wait: %s", big.State)
	}
	if small.State != model.UnitRunning {
		t.Errorf("small should backfill: %s", small.State)
	}
}

func TestMultiNodeJob(t *testing.T) {
	s := newCluster(t, 3)
	j, err := s.Submit(JobSpec{User: "u", Account: "a", Partition: "cpu",
		Nodes: 2, CPUsPerNode: 64, MemPerNode: 1 << 30, Duration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	s.Advance(15 * time.Second)
	if len(j.NodeNames) != 2 {
		t.Fatalf("nodes = %v", j.NodeNames)
	}
	for _, nn := range j.NodeNames {
		n, _ := s.Node(nn)
		if n.NumWorkloads() != 1 {
			t.Errorf("node %s has %d workloads", nn, n.NumWorkloads())
		}
	}
	u := s.Units(t0)[0]
	if u.CPUs != 128 {
		t.Errorf("unit cpus = %d, want 128", u.CPUs)
	}
}

func TestTimeout(t *testing.T) {
	s := newCluster(t, 1)
	j, _ := s.Submit(JobSpec{User: "u", Account: "a", Partition: "cpu",
		CPUsPerNode: 4, MemPerNode: 1 << 30,
		Duration: time.Hour, TimeLimit: 30 * time.Second})
	for i := 0; i < 4; i++ {
		s.Advance(15 * time.Second)
	}
	if j.State != model.UnitTimeout {
		t.Errorf("state = %s, want timeout", j.State)
	}
}

func TestFailedJob(t *testing.T) {
	s := newCluster(t, 1)
	j, _ := s.Submit(JobSpec{User: "u", Account: "a", Partition: "cpu",
		CPUsPerNode: 4, MemPerNode: 1 << 30, Duration: 15 * time.Second, ExitCode: 1})
	s.Advance(15 * time.Second)
	s.Advance(15 * time.Second)
	if j.State != model.UnitFailed {
		t.Errorf("state = %s, want failed", j.State)
	}
	u := s.Units(t0)
	if u[0].ExitCode != 1 || u[0].State != model.UnitFailed {
		t.Errorf("unit = %+v", u[0])
	}
}

func TestSubmitErrors(t *testing.T) {
	s := newCluster(t, 1)
	if _, err := s.Submit(JobSpec{Partition: "nope", CPUsPerNode: 1}); err == nil {
		t.Error("unknown partition accepted")
	}
	if _, err := s.Submit(JobSpec{Partition: "cpu"}); err == nil {
		t.Error("zero CPUs accepted")
	}
	if _, err := s.Submit(JobSpec{Partition: "cpu", CPUsPerNode: 1000}); err == nil {
		t.Error("oversized job accepted")
	}
	if _, err := s.Submit(JobSpec{Partition: "cpu", CPUsPerNode: 4, Nodes: 5}); err == nil {
		t.Error("too many nodes accepted")
	}
}

func TestGPUAllocation(t *testing.T) {
	spec := hw.DefaultGPUSpec("gpunode", true, model.GPUA100, model.GPUA100, model.GPUA100, model.GPUA100)
	spec.NoiseFrac = 0
	n, _ := hw.NewNode(spec, t0)
	s, _ := NewScheduler("test", t0, &Partition{Name: "gpu", Nodes: []*hw.Node{n}})
	j1, _ := s.Submit(JobSpec{User: "u", Account: "a", Partition: "gpu",
		CPUsPerNode: 8, MemPerNode: 1 << 30, GPUsPerNode: 2, Duration: time.Minute})
	j2, _ := s.Submit(JobSpec{User: "u", Account: "a", Partition: "gpu",
		CPUsPerNode: 8, MemPerNode: 1 << 30, GPUsPerNode: 2, Duration: time.Minute})
	j3, _ := s.Submit(JobSpec{User: "u", Account: "a", Partition: "gpu",
		CPUsPerNode: 8, MemPerNode: 1 << 30, GPUsPerNode: 1, Duration: time.Minute})
	s.Advance(15 * time.Second)
	if j1.State != model.UnitRunning || j2.State != model.UnitRunning {
		t.Fatalf("gpu jobs not running: %s %s", j1.State, j2.State)
	}
	if j3.State != model.UnitPending {
		t.Errorf("j3 should wait for GPUs: %s", j3.State)
	}
	// Disjoint ordinals.
	o1 := j1.GPUOrdinals["gpunode"]
	o2 := j2.GPUOrdinals["gpunode"]
	seen := map[int]bool{}
	for _, o := range append(append([]int{}, o1...), o2...) {
		if seen[o] {
			t.Errorf("GPU ordinal %d double-booked", o)
		}
		seen[o] = true
	}
	// Unit carries the ordinals (the map CEEMS must persist).
	units := s.Units(t0)
	if len(units[0].GPUOrdinals) != 2 {
		t.Errorf("unit gpu ordinals = %v", units[0].GPUOrdinals)
	}
}

func TestUnitsConversion(t *testing.T) {
	s := newCluster(t, 1)
	s.Submit(JobSpec{Name: "j", User: "bob", Account: "proj", Partition: "cpu",
		CPUsPerNode: 4, MemPerNode: 2 << 30, Duration: 15 * time.Second})
	s.Advance(15 * time.Second)
	s.Advance(15 * time.Second)
	units := s.Units(t0)
	if len(units) != 1 {
		t.Fatalf("units = %d", len(units))
	}
	u := units[0]
	if u.UUID != "test/slurm/1" || u.User != "bob" || u.Project != "proj" {
		t.Errorf("unit = %+v", u)
	}
	if u.State != model.UnitCompleted || u.ElapsedSec != 15 {
		t.Errorf("lifecycle = %s %d", u.State, u.ElapsedSec)
	}
	// Cutoff filtering: jobs finished before cutoff are excluded.
	future := s.Now().Add(time.Hour)
	if got := s.Units(future); len(got) != 0 {
		t.Errorf("cutoff filter failed: %d", len(got))
	}
}

func TestDBDHandler(t *testing.T) {
	s := newCluster(t, 1)
	s.Submit(JobSpec{Name: "j", User: "bob", Account: "p", Partition: "cpu",
		CPUsPerNode: 4, MemPerNode: 1 << 30, Duration: time.Minute})
	s.Advance(15 * time.Second)
	srv := httptest.NewServer(s.DBDHandler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/slurmdbd/v1/jobs?since=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var units []model.Unit
	if err := json.NewDecoder(resp.Body).Decode(&units); err != nil {
		t.Fatal(err)
	}
	if len(units) != 1 || units[0].User != "bob" {
		t.Errorf("dbd units = %+v", units)
	}

	resp2, err := srv.Client().Get(srv.URL + "/slurmdbd/v1/jobs?since=abc")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 400 {
		t.Errorf("bad since = %d", resp2.StatusCode)
	}

	resp3, err := srv.Client().Get(srv.URL + "/slurmdbd/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var st Stats
	json.NewDecoder(resp3.Body).Decode(&st)
	if st.Running != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestChurn(t *testing.T) {
	// Many short jobs across a small cluster: scheduler must stay
	// consistent (no lost capacity).
	s := newCluster(t, 4)
	for i := 0; i < 40; i++ {
		_, err := s.Submit(JobSpec{
			User: "u", Account: "a", Partition: "cpu",
			CPUsPerNode: 16, MemPerNode: 8 << 30,
			Duration: time.Duration(15*(1+i%4)) * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		s.Advance(15 * time.Second)
	}
	st := s.Stats()
	if st.Finished != 40 || st.Pending != 0 || st.Running != 0 {
		t.Fatalf("churn stats = %+v", st)
	}
	// All capacity restored.
	for _, n := range s.Nodes() {
		if n.NumWorkloads() != 0 {
			t.Errorf("node %s retains workloads", n.Spec.Name)
		}
	}
	free := s.nodeFree["nodea"]
	if free.cpusFree != 64 {
		t.Errorf("cpusFree = %d", free.cpusFree)
	}
}

func BenchmarkAdvanceWithChurn(b *testing.B) {
	var nodes []*hw.Node
	for i := 0; i < 16; i++ {
		spec := hw.DefaultIntelSpec("n" + string(rune('a'+i)))
		n, _ := hw.NewNode(spec, t0)
		nodes = append(nodes, n)
	}
	s, _ := NewScheduler("bench", t0, &Partition{Name: "cpu", Nodes: nodes})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%4 == 0 {
			s.Submit(JobSpec{User: "u", Account: "a", Partition: "cpu",
				CPUsPerNode: 16, MemPerNode: 4 << 30, Duration: 2 * time.Minute})
		}
		s.Advance(15 * time.Second)
	}
}
