// Jean-Zay example: a scaled-down version of the paper's deployment — a
// heterogeneous cluster (Intel, AMD, two GPU server types) under SLURM with
// a realistic workload mix, monitored by the full CEEMS stack. After two
// simulated hours it prints the three Fig. 2 dashboards.
//
//	go run ./examples/jeanzay
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/relstore"
)

func main() {
	topo := cluster.Topology{
		Name:             "jean-zay-demo",
		IntelNodes:       6,
		AMDNodes:         3,
		GPUIncludedNodes: 2,
		GPUExcludedNodes: 2,
		GPUsPerNode:      4,
		GPUKinds:         []model.GPUKind{model.GPUV100, model.GPUA100, model.GPUH100},
		Seed:             2026,
	}
	sim, err := cluster.New(topo, cluster.DefaultOptions(), 12, 5, 4000)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	fmt.Printf("simulating %d nodes (%d GPUs) for 2 hours at 4000 jobs/day...\n",
		topo.TotalNodes(), topo.TotalGPUs())
	sim.RunFor(ctx, 2*time.Hour)
	if err := sim.FinalizeUpdate(ctx); err != nil {
		log.Fatal(err)
	}
	st := sim.Sched.Stats()
	fmt.Printf("done: %d submitted, %d finished, %d still running\n\n",
		sim.Gen.Submitted, st.Finished, st.Running)

	// Fig 2a: aggregate usage per user.
	fmt.Println("── Fig 2a: aggregate usage metrics ──────────────────────────")
	users, _ := sim.Store.Select("users", relstore.Query{OrderBy: "total_energy_j", Desc: true})
	fmt.Printf("%-8s %6s %10s %8s %8s %11s %9s\n",
		"USER", "UNITS", "CPU-HRS", "CPU%", "GPU%", "ENERGY kWh", "CO2 g")
	for _, r := range users {
		fmt.Printf("%-8v %6v %10.1f %8.1f %8.1f %11.4f %9.2f\n",
			r["user"], r["num_units"], f(r["cpu_time_sec"])/3600,
			f(r["avg_cpu_usage"])*100, f(r["avg_gpu_usage"])*100,
			f(r["total_energy_j"])/3.6e6, f(r["emissions_g"]))
	}

	// Fig 2b: job list of the heaviest user.
	heavy := users[0]["user"].(string)
	fmt.Printf("\n── Fig 2b: SLURM jobs of %s ─────────────────────────────\n", heavy)
	units, _ := sim.Store.Select("units", relstore.Query{
		Where:   []relstore.Cond{{Col: "user", Op: relstore.OpEq, Val: heavy}},
		OrderBy: "total_energy_j", Desc: true, Limit: 10,
	})
	fmt.Printf("%-6s %-14s %-10s %8s %5s %5s %11s %8s\n",
		"JOBID", "PARTITION", "STATE", "ELAPSED", "CPUS", "GPUS", "ENERGY kWh", "CO2 g")
	for _, r := range units {
		fmt.Printf("%-6v %-14v %-10v %7vs %5v %5v %11.5f %8.3f\n",
			r["id"], r["partition"], r["state"], r["elapsed_sec"],
			r["cpus"], r["gpus"], f(r["total_energy_j"])/3.6e6, f(r["emissions_g"]))
	}

	// Fig 2c: time series of the longest-running unit.
	long, _ := sim.Store.Select("units", relstore.Query{OrderBy: "elapsed_sec", Desc: true, Limit: 1})
	uid := long[0]["id"].(string)
	fmt.Printf("\n── Fig 2c: time-series metrics of job %s ────────────────\n", uid)
	eng, q := sim.Engine()
	for _, panel := range []struct{ title, query string }{
		{"attributed power (W)", fmt.Sprintf(`{__name__=~"uuid:total_watts:.+",uuid=%q}`, uid)},
		{"CPU share of node", fmt.Sprintf(`{__name__=~"uuid:cpu_share:.+",uuid=%q}`, uid)},
	} {
		m, err := eng.Range(q, panel.query, sim.Now().Add(-90*time.Minute), sim.Now(), time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		for _, sr := range m {
			fmt.Printf("%-22s %s\n", panel.title, spark(sr.Samples))
		}
	}
}

func f(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int64:
		return float64(x)
	}
	return 0
}

var runes = []rune("▁▂▃▄▅▆▇█")

func spark(samples []model.Sample) string {
	if len(samples) == 0 {
		return "(no data)"
	}
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, s := range samples {
		mn, mx = math.Min(mn, s.V), math.Max(mx, s.V)
	}
	var b strings.Builder
	for _, s := range samples {
		i := 0
		if mx > mn {
			i = int((s.V - mn) / (mx - mn) * float64(len(runes)-1))
		}
		b.WriteRune(runes[i])
	}
	return fmt.Sprintf("%s  [%.1f .. %.1f]", b.String(), mn, mx)
}
