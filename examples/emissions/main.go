// Emissions example: the same workload's carbon footprint under static
// OWID factors vs real-time providers (mock RTE and Electricity Maps
// servers), illustrating why CEEMS supports multiple factor sources and
// how the provider chain falls back (paper §II.A.c).
//
//	go run ./examples/emissions
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"repro/internal/emissions"
)

func main() {
	ctx := context.Background()
	const workloadJoules = 500 * 3600 * 24 // a 500 W node-day ≈ 12 kWh

	// Mock real-time providers with a controllable clock.
	clock := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	now := func() time.Time { return clock }
	rteSrv := httptest.NewServer(emissions.MockRTEHandler(now))
	defer rteSrv.Close()
	emapsSrv := httptest.NewServer(emissions.MockEMapsHandler("demo-token", now))
	defer emapsSrv.Close()

	owid := emissions.OWID{}
	rte := &emissions.RTE{URL: rteSrv.URL}
	emaps := &emissions.EMaps{BaseURL: emapsSrv.URL, Token: "demo-token"}

	// 1. Static factors: the zone dominates.
	fmt.Println("static OWID factors — one node-day (12 kWh):")
	for _, zone := range []string{"FR", "SE", "DE", "PL", "US"} {
		f, _ := owid.Factor(ctx, zone)
		fmt.Printf("  %-3s %5.0f g/kWh → %8.0f g CO2e\n", zone, f.GramsPerKWh, f.Grams(workloadJoules))
	}

	// 2. Real-time France through the day: scheduling matters.
	fmt.Println("\nreal-time RTE factor across one day (per-hour emissions of a 500 W node):")
	hourJoules := 500.0 * 3600
	for h := 0; h < 24; h += 3 {
		clock = time.Date(2026, 6, 1, h, 0, 0, 0, time.UTC)
		f, err := rte.Factor(ctx, "FR")
		if err != nil {
			log.Fatal(err)
		}
		bar := ""
		for i := 0.0; i < f.Grams(hourJoules); i += 2 {
			bar += "#"
		}
		fmt.Printf("  %02d:00  %5.1f g/kWh  %6.1f g  %s\n", h, f.GramsPerKWh, f.Grams(hourJoules), bar)
	}

	// 3. Electricity Maps for zones RTE does not serve.
	fmt.Println("\nElectricity Maps (requires API token, as the real free tier):")
	clock = time.Date(2026, 6, 1, 13, 0, 0, 0, time.UTC)
	for _, zone := range []string{"DE", "GB", "JP"} {
		f, err := emaps.Factor(ctx, zone)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-3s %6.1f g/kWh (13:00 local solar trough)\n", zone, f.GramsPerKWh)
	}
	if _, err := (&emissions.EMaps{BaseURL: emapsSrv.URL, Token: "wrong"}).Factor(ctx, "DE"); err != nil {
		fmt.Printf("  bad token rejected as expected: %v\n", err)
	}

	// 4. The provider chain CEEMS deploys: real-time first, static fallback.
	chain := &emissions.Chain{Providers: []emissions.Provider{
		&emissions.Cached{Provider: rte, TTL: 5 * time.Minute},
		owid,
	}}
	f, _ := chain.Factor(ctx, "FR")
	fmt.Printf("\nchain(FR) → %s at %.1f g/kWh (real-time preferred)\n", f.Source, f.GramsPerKWh)
	f, _ = chain.Factor(ctx, "DE")
	fmt.Printf("chain(DE) → %s at %.1f g/kWh (RTE refuses non-FR, OWID fallback)\n", f.Source, f.GramsPerKWh)
}
