// Multi-manager example: the "resource manager agnostic" claim in action.
// One CEEMS API server ingests compute units from three different resource
// managers — SLURM batch jobs, Openstack VMs and Kubernetes pods — into the
// same unified schema, and the same cgroup collector code reads all three
// cgroup layouts.
//
//	go run ./examples/multimanager
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/api"
	"repro/internal/emissions"
	"repro/internal/hw"
	"repro/internal/k8ssim"
	"repro/internal/model"
	"repro/internal/openstacksim"
	"repro/internal/relstore"
	"repro/internal/resourcemanager"
	"repro/internal/slurmsim"
	"repro/internal/tsdb"
)

func main() {
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	mkNode := func(name string) *hw.Node {
		n, err := hw.NewNode(hw.DefaultIntelSpec(name), start)
		if err != nil {
			log.Fatal(err)
		}
		return n
	}

	// Three clusters under three managers.
	slurm, err := slurmsim.NewScheduler("hpc", start,
		&slurmsim.Partition{Name: "cpu", Nodes: []*hw.Node{mkNode("hpc-n1")}})
	if err != nil {
		log.Fatal(err)
	}
	cloud := openstacksim.NewManager("cloud", start, mkNode("cloud-hv1"))
	k8s := k8ssim.NewManager("k8s", start, mkNode("k8s-w1"))

	// Workloads on each.
	slurm.Submit(slurmsim.JobSpec{
		Name: "mpi-solve", User: "alice", Account: "physics", Partition: "cpu",
		CPUsPerNode: 32, MemPerNode: 64 << 30, Duration: time.Hour,
	})
	cloud.Boot(openstacksim.VMSpec{
		Name: "web-frontend", User: "bob", Project: "webshop", VCPUs: 8, MemBytes: 16 << 30,
	})
	k8s.Run(k8ssim.PodSpec{
		Name: "trainer", Namespace: "ml", User: "carol", CPURequest: 16, MemBytes: 32 << 30,
	})

	// Advance all three for 10 minutes.
	for i := 0; i < 40; i++ {
		slurm.Advance(15 * time.Second)
		cloud.Advance(15 * time.Second)
		k8s.Advance(15 * time.Second)
	}

	// One API server, three fetchers — the unified schema.
	store, err := relstore.Open("")
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range api.Schemas() {
		if err := store.CreateTable(s); err != nil {
			log.Fatal(err)
		}
	}
	updater := &api.Updater{
		Store: store,
		Fetchers: []resourcemanager.Fetcher{
			&resourcemanager.Local{Cluster: "hpc", Kind: model.ManagerSLURM, Source: slurm},
			&resourcemanager.Local{Cluster: "cloud", Kind: model.ManagerOpenstack, Source: cloud},
			&resourcemanager.Local{Cluster: "k8s", Kind: model.ManagerK8s, Source: k8s},
		},
		Query:  tsdb.MustOpen(tsdb.DefaultOptions()), // no metrics needed for the schema demo
		Factor: emissions.OWID{},
		Zone:   "FR",
	}
	if err := updater.Update(context.Background(), start.Add(10*time.Minute)); err != nil {
		log.Fatal(err)
	}

	rows, _ := store.Select(api.TableUnits, relstore.Query{})
	fmt.Println("one unified compute-unit table across three resource managers:")
	fmt.Printf("%-22s %-10s %-8s %-8s %-10s %6s %9s\n",
		"UUID", "MANAGER", "USER", "PROJECT", "STATE", "CPUS", "ELAPSED")
	for _, r := range rows {
		fmt.Printf("%-22v %-10v %-8v %-8v %-10v %6v %8vs\n",
			r["uuid"], r["manager"], r["user"], r["project"], r["state"],
			r["cpus"], r["elapsed_sec"])
	}

	// The same collector code walks all three cgroup layouts.
	fmt.Println("\ncgroup layouts the exporter's one collector handles:")
	for _, c := range []struct{ mgr, path string }{
		{"slurm", "/sys/fs/cgroup/system.slice/slurmstepd.scope/job_<id>"},
		{"openstack", "/sys/fs/cgroup/machine.slice/machine-qemu-<id>.scope"},
		{"k8s", "/sys/fs/cgroup/kubepods.slice/kubepods-pod<uid>.slice"},
	} {
		fmt.Printf("  %-10s %s\n", c.mgr, c.path)
	}
}
