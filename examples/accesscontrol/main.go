// Access-control example: the Grafana → CEEMS LB → Prometheus path over
// real HTTP. Two users run jobs; each can query their own job's metrics
// through the load balancer, cross-user queries are rejected, and an admin
// bypasses the check (paper §II.B.c).
//
//	go run ./examples/accesscontrol
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"time"

	"repro/internal/cluster"
	"repro/internal/lb"
	"repro/internal/promapi"
	"repro/internal/relstore"
)

func main() {
	topo := cluster.Topology{Name: "secure", IntelNodes: 2, Seed: 5}
	sim, err := cluster.New(topo, cluster.DefaultOptions(), 2, 2, 2000)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	sim.RunFor(ctx, 30*time.Minute)
	if err := sim.FinalizeUpdate(ctx); err != nil {
		log.Fatal(err)
	}
	sim.APIServer.AddAdmin("operator")

	// Prometheus API backend + LB in front.
	backendSrv := httptest.NewServer((&promapi.Handler{Query: sim.Querier, Now: sim.Now}).Mux())
	defer backendSrv.Close()
	backend, _ := lb.NewBackend(backendSrv.URL)
	sim.LB.Backends = []*lb.Backend{backend}
	lbSrv := httptest.NewServer(sim.LB)
	defer lbSrv.Close()

	// Pick one job of each user.
	jobOf := func(user string) string {
		rows, err := sim.Store.Select("units", relstore.Query{
			Where: []relstore.Cond{{Col: "user", Op: relstore.OpEq, Val: user}},
			Limit: 1,
		})
		if err != nil || len(rows) == 0 {
			log.Fatalf("no units for %s", user)
		}
		return rows[0]["id"].(string)
	}
	jobA, jobB := jobOf("user00"), jobOf("user01")
	fmt.Printf("user00 owns job %s; user01 owns job %s\n\n", jobA, jobB)

	query := func(asUser, jobID string) int {
		q := fmt.Sprintf(`{__name__=~"uuid:total_watts:.+",uuid=%q}`, jobID)
		req, _ := http.NewRequest(http.MethodGet,
			lbSrv.URL+"/api/v1/query?query="+url.QueryEscape(q), nil)
		req.Header.Set("X-Grafana-User", asUser) // the header Grafana always sends
		resp, err := lbSrv.Client().Do(req)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}

	cases := []struct {
		user, job, expect string
	}{
		{"user00", jobA, "own job → allowed"},
		{"user01", jobB, "own job → allowed"},
		{"user00", jobB, "someone else's job → denied"},
		{"user01", jobA, "someone else's job → denied"},
		{"operator", jobA, "admin → allowed"},
		{"operator", jobB, "admin → allowed"},
	}
	fmt.Println("LB access-control matrix:")
	for _, c := range cases {
		code := query(c.user, c.job)
		fmt.Printf("  %-9s queries job %-3s → HTTP %d   (%s)\n", c.user, c.job, code, c.expect)
	}
	fmt.Printf("\nqueries denied by the LB: %d\n", sim.LB.Denied())

	// Queries without unit selectors (node dashboards) pass for everyone.
	req, _ := http.NewRequest(http.MethodGet,
		lbSrv.URL+"/api/v1/query?query="+url.QueryEscape(`sum(ceems_ipmi_dcmi_current_watts)`), nil)
	req.Header.Set("X-Grafana-User", "user00")
	resp, _ := lbSrv.Client().Do(req)
	resp.Body.Close()
	fmt.Printf("node-level query (no uuid) as user00 → HTTP %d\n", resp.StatusCode)
}
