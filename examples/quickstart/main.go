// Quickstart: the minimal CEEMS pipeline on one simulated node — exporter
// → scrape → TSDB → Eq. 1 recording rules → per-job power and energy.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"strings"
	"time"

	"repro/internal/exporter"
	"repro/internal/hw"
	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/promql"
	"repro/internal/rules"
	"repro/internal/rules/ceemsrules"
	"repro/internal/scrape"
	"repro/internal/tsdb"
)

// directFetcher scrapes the in-process exporter.
type directFetcher struct{ exp *exporter.Exporter }

func (f directFetcher) Fetch(context.Context, string) (io.ReadCloser, error) {
	return io.NopCloser(strings.NewReader(f.exp.Render())), nil
}

func main() {
	// 1. A simulated Intel compute node with two jobs.
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	spec := hw.DefaultIntelSpec("node1")
	node, err := hw.NewNode(spec, start)
	if err != nil {
		log.Fatal(err)
	}
	node.AddWorkload(&hw.Workload{
		ID: "job_101", CPUs: 48, MemLimit: 128 << 30,
		CPUUtil: func(time.Duration) float64 { return 0.9 }, // busy solver
	})
	node.AddWorkload(&hw.Workload{
		ID: "job_102", CPUs: 8, MemLimit: 32 << 30,
		CPUUtil: func(time.Duration) float64 { return 0.2 }, // light post-processing
	})

	// 2. The CEEMS exporter with all collectors.
	exp := exporter.New(
		&exporter.CgroupCollector{FS: node.FS, Layout: exporter.SlurmLayout()},
		&exporter.RAPLCollector{FS: node.FS},
		&exporter.IPMICollector{Reader: node},
		&exporter.NodeCollector{FS: node.FS},
	)

	// 3. Scrape into the TSDB every 15 s; evaluate Eq. 1 rules every 60 s.
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	clock := start
	sm := &scrape.Manager{
		Dest: db, Fetcher: directFetcher{exp},
		Groups: []*scrape.TargetGroup{{
			JobName: "ceems", Targets: []string{"node1"},
			Labels: map[string]string{"nodeclass": "intel", "cluster": "quickstart"},
		}},
		Now: func() time.Time { return clock },
	}
	rm := &rules.Manager{
		Engine: rules.NewEngine(nil), Query: db, Dest: db,
		Groups: []*rules.Group{ceemsrules.IntelGroup(ceemsrules.DefaultOptions())},
	}
	ctx := context.Background()
	for i := 0; i < 20; i++ { // 5 simulated minutes
		node.Advance(15 * time.Second)
		clock = clock.Add(15 * time.Second)
		sm.ScrapeAll(ctx)
		if i%4 == 3 {
			if err := rm.EvalAll(clock); err != nil {
				log.Fatal(err)
			}
		}
	}

	// 4. Query per-job power — the paper's Eq. 1 output.
	eng := promql.NewEngine()
	v, err := eng.Instant(db, `uuid:host_watts:intel`, clock)
	if err != nil {
		log.Fatal(err)
	}
	ipmi, _ := node.PowerReading()
	fmt.Printf("node IPMI power: %.1f W\n\n", ipmi)
	fmt.Println("per-job attribution (Eq. 1):")
	var sum float64
	for _, s := range v.(promql.Vector) {
		fmt.Printf("  job %-4s  %7.1f W\n", s.Labels.Get("uuid"), s.V)
		sum += s.V
	}
	fmt.Printf("  %-8s  %7.1f W  (conservation: %.1f%% of IPMI)\n\n", "total", sum, sum/ipmi*100)

	// 5. Energy over the window via increase-style integration.
	m, err := eng.Range(db, `uuid:host_watts:intel`, start.Add(time.Minute), clock, time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("energy over the 5-minute window:")
	for _, sr := range m {
		var joules float64
		for _, p := range sr.Samples {
			joules += p.V * 60
		}
		fmt.Printf("  job %-4s  %8.0f J (%.5f kWh)\n", sr.Labels.Get("uuid"), joules, joules/3.6e6)
	}
	_ = labels.MetricName
	_ = model.ManagerSLURM
}
