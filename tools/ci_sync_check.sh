#!/bin/sh
# ci_sync_check.sh — fail when the Makefile and .github/workflows/ci.yml
# drift apart. Run from the repo root (make ci-sync-check, or the CI lint
# job). Two invariants:
#
#   1. The race-detect package list is identical in both files (order
#      ignored). This is the list that silently rotted once already —
#      promql/promapi were raced in CI but not by `make race`.
#   2. Every Makefile target is declared in .PHONY, so a stray file named
#      like a target (e.g. `bench-smoke`) can never shadow it.
#   3. Every `go test -race -count=2 ...` harness line (wal-recovery,
#      querycache, cluster-chaos) is byte-identical between the two files
#      after normalizing $(GO) to go — the -run pattern and package list of
#      each harness job are pinned, so neither side can narrow a harness
#      without the other noticing.
set -eu

cd "$(dirname "$0")/.."
fail=0

norm() { tr ' ' '\n' | sed '/^$/d' | sort; }

mk_pkgs=$(sed -n 's/^RACE_PKGS := //p' Makefile | norm)
# Only the bare race job line (first argument is a package path); the
# wal-recovery/querycache jobs also pass -race but with extra flags.
ci_pkgs=$(sed -n 's/^ *run: go test -race \(\.\/.*\)$/\1/p' .github/workflows/ci.yml | norm)

if [ -z "$mk_pkgs" ]; then
    echo "ci-sync-check: could not extract RACE_PKGS from Makefile" >&2
    fail=1
fi
if [ -z "$ci_pkgs" ]; then
    echo "ci-sync-check: could not extract the race package list from ci.yml" >&2
    fail=1
fi
if [ "$mk_pkgs" != "$ci_pkgs" ]; then
    echo "ci-sync-check: race package lists differ between Makefile and ci.yml:" >&2
    echo "--- Makefile RACE_PKGS" >&2
    echo "$mk_pkgs" >&2
    echo "--- ci.yml race job" >&2
    echo "$ci_pkgs" >&2
    fail=1
fi

# Harness lines: -race -count=2 with a pinned -run pattern and package
# list. Compare the full normalized command strings, sorted.
mk_runs=$(sed -n 's/^	$(GO) \(test -race -count=2.*\)$/go \1/p' Makefile | sort)
ci_runs=$(sed -n 's/^ *run: \(go test -race -count=2.*\)$/\1/p' .github/workflows/ci.yml | sort)

if [ -z "$mk_runs" ]; then
    echo "ci-sync-check: could not extract any -race -count=2 harness lines from the Makefile" >&2
    fail=1
fi
if [ -z "$ci_runs" ]; then
    echo "ci-sync-check: could not extract any -race -count=2 harness lines from ci.yml" >&2
    fail=1
fi
if [ "$mk_runs" != "$ci_runs" ]; then
    echo "ci-sync-check: -race -count=2 harness lines differ between Makefile and ci.yml:" >&2
    echo "--- Makefile" >&2
    echo "$mk_runs" >&2
    echo "--- ci.yml" >&2
    echo "$ci_runs" >&2
    fail=1
fi

phony=$(sed -n 's/^\.PHONY: //p' Makefile | norm)
targets=$(sed -n 's/^\([a-z][a-z-]*\):.*/\1/p' Makefile | norm)
for t in $targets; do
    if ! echo "$phony" | grep -qx "$t"; then
        echo "ci-sync-check: Makefile target '$t' is missing from .PHONY" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "ci-sync-check: Makefile and ci.yml are in sync"
