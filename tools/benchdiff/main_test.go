package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `
goos: linux
goarch: amd64
pkg: repro/internal/tsdb
BenchmarkWALAppend/wal-v1-8      3000000   405.0 ns/op   22.10 walbytes/sample   153 B/op   0 allocs/op
BenchmarkWALAppend/wal-v2-8      3500000   350.0 ns/op    5.40 walbytes/sample   160 B/op   0 allocs/op
BenchmarkWALReplay/v2-8                200   6500000 ns/op   7700000 samples/s
BenchmarkUnrelated-8             1000      12.0 ns/op
PASS
`

func TestParseBenchOutput(t *testing.T) {
	got := parseBenchOutput(sampleOutput)
	v1 := got["BenchmarkWALAppend/wal-v1"]
	if v1 == nil {
		t.Fatalf("wal-v1 not parsed: %v", got)
	}
	if v1["ns_per_op"] != 405.0 || v1["walbytes_per_sample"] != 22.10 || v1["bytes_per_op"] != 153 || v1["allocs_per_op"] != 0 {
		t.Fatalf("wal-v1 metrics wrong: %v", v1)
	}
	if got["BenchmarkWALReplay/v2"]["samples_per_s"] != 7700000 {
		t.Fatalf("custom throughput metric not parsed: %v", got["BenchmarkWALReplay/v2"])
	}
}

func TestLoadBaselinesAndDiff(t *testing.T) {
	dir := t.TempDir()
	baseline := `{
	  "description": "prose is ignored",
	  "benchmarks": {
	    "BenchmarkWALAppend": {
	      "v1": {"bench": "BenchmarkWALAppend/wal-v1", "ns_op": 405.0, "walbytes_per_sample": 22.1, "allocs_op": 0},
	      "v2": {"bench": "BenchmarkWALAppend/wal-v2", "ns_op": 250.0},
	      "historical": {"ns_op": 9999.0}
	    },
	    "BenchmarkWALReplay": {"v2": {"bench": "BenchmarkWALReplay/v2", "samples_per_s": 12000000}},
	    "gone": {"bench": "BenchmarkRemoved", "ns_op": 1.0}
	  }
	}`
	if err := os.WriteFile(filepath.Join(dir, "BENCH_x.json"), []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := loadBaselines(dir, "BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 4 {
		t.Fatalf("want 4 opted-in baselines, got %d: %v", len(base), base)
	}
	if _, ok := base["BenchmarkWALAppend/wal-v1"]; !ok {
		t.Fatal("bench key not honored")
	}

	measured := parseBenchOutput(sampleOutput)
	report, regressions, missing := diff(base, measured, 0.25, nil)

	// wal-v1 within tolerance; wal-v2 350 vs 250 = +40% ns regression;
	// replay throughput 7.7M vs 12M baseline = -36% regression;
	// BenchmarkRemoved has no measurement — counted separately so a
	// renamed benchmark can never make the gate vacuous.
	if regressions != 2 {
		t.Fatalf("want 2 regressions, got %d:\n%s", regressions, report)
	}
	if missing != 1 {
		t.Fatalf("want 1 missing measurement, got %d:\n%s", missing, report)
	}
	for _, want := range []string{
		"REGRESSION  BenchmarkWALAppend/wal-v2",
		"REGRESSION  BenchmarkWALReplay/v2",
		"MISSING     BenchmarkRemoved",
	} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
	if strings.Contains(report, "REGRESSION  BenchmarkWALAppend/wal-v1") {
		t.Fatalf("wal-v1 flagged despite being within tolerance:\n%s", report)
	}

	// Restricting to hardware-stable metrics (the CI runner mode) drops
	// the two ns/throughput regressions; only missing stays.
	reportHW, regressionsHW, missingHW := diff(base, measured, 0.25,
		map[string]bool{"bytes_per_op": true, "allocs_per_op": true, "walbytes_per_sample": true})
	if regressionsHW != 0 || missingHW != 1 {
		t.Fatalf("metric allowlist: want 0 regressions / 1 missing, got %d / %d:\n%s", regressionsHW, missingHW, reportHW)
	}
	if strings.Contains(reportHW, "ns_per_op") {
		t.Fatalf("allowlist did not filter ns_per_op:\n%s", reportHW)
	}

	// Zero-alloc baseline: a nonzero measurement is always a regression.
	measured["BenchmarkWALAppend/wal-v1"]["allocs_per_op"] = 3
	_, regressions, _ = diff(base, measured, 0.25, nil)
	if regressions != 3 {
		t.Fatalf("0 -> 3 allocs/op not flagged: got %d regressions", regressions)
	}
}
