package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `
goos: linux
goarch: amd64
pkg: repro/internal/tsdb
BenchmarkWALAppend/wal-v1-8      3000000   405.0 ns/op   22.10 walbytes/sample   153 B/op   0 allocs/op
BenchmarkWALAppend/wal-v2-8      3500000   350.0 ns/op    5.40 walbytes/sample   160 B/op   0 allocs/op
BenchmarkWALReplay/v2-8                200   6500000 ns/op   7700000 samples/s
BenchmarkUnrelated-8             1000      12.0 ns/op
PASS
`

// multiRunOutput is what -count=3 produces: each benchmark repeated, every
// repetition one sample.
const multiRunOutput = `
BenchmarkWALAppend/wal-v1-8      3000000   400.0 ns/op   150 B/op   0 allocs/op
BenchmarkWALAppend/wal-v1-8      3000000   410.0 ns/op   153 B/op   0 allocs/op
BenchmarkWALAppend/wal-v1-8      3000000   405.0 ns/op   156 B/op   0 allocs/op
PASS
`

func TestParseBenchOutput(t *testing.T) {
	got := aggregate(parseBenchOutput(sampleOutput))
	v1 := got["BenchmarkWALAppend/wal-v1"]
	if v1 == nil {
		t.Fatalf("wal-v1 not parsed: %v", got)
	}
	if v1["ns_per_op"].Median != 405.0 || v1["walbytes_per_sample"].Median != 22.10 ||
		v1["bytes_per_op"].Median != 153 || v1["allocs_per_op"].Median != 0 {
		t.Fatalf("wal-v1 metrics wrong: %v", v1)
	}
	if v1["ns_per_op"].Runs != 1 {
		t.Fatalf("single run parsed as %d runs", v1["ns_per_op"].Runs)
	}
	if got["BenchmarkWALReplay/v2"]["samples_per_s"].Median != 7700000 {
		t.Fatalf("custom throughput metric not parsed: %v", got["BenchmarkWALReplay/v2"])
	}
}

func TestAggregateMultiRun(t *testing.T) {
	got := aggregate(parseBenchOutput(multiRunOutput))
	ns := got["BenchmarkWALAppend/wal-v1"]["ns_per_op"]
	if ns.Runs != 3 {
		t.Fatalf("runs = %d, want 3", ns.Runs)
	}
	if ns.Median != 405.0 {
		t.Fatalf("median = %v, want 405", ns.Median)
	}
	// Deviations from the 405 median are {5, 5, 0}; their median is 5.
	if ns.MAD != 5.0 {
		t.Fatalf("mad = %v, want 5", ns.MAD)
	}
	if b := got["BenchmarkWALAppend/wal-v1"]["bytes_per_op"]; b.Median != 153 || b.MAD != 3 {
		t.Fatalf("bytes stat = %+v, want median 153 mad 3", b)
	}
}

func TestLoadBaselinesAndDiff(t *testing.T) {
	dir := t.TempDir()
	baseline := `{
	  "description": "prose is ignored",
	  "benchmarks": {
	    "BenchmarkWALAppend": {
	      "v1": {"bench": "BenchmarkWALAppend/wal-v1", "ns_op": 405.0, "walbytes_per_sample": 22.1, "allocs_op": 0},
	      "v2": {"bench": "BenchmarkWALAppend/wal-v2", "ns_op": 250.0},
	      "historical": {"ns_op": 9999.0}
	    },
	    "BenchmarkWALReplay": {"v2": {"bench": "BenchmarkWALReplay/v2", "samples_per_s": 12000000}},
	    "gone": {"bench": "BenchmarkRemoved", "ns_op": 1.0}
	  }
	}`
	if err := os.WriteFile(filepath.Join(dir, "BENCH_x.json"), []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := loadBaselines(dir, "BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 4 {
		t.Fatalf("want 4 opted-in baselines, got %d: %v", len(base), base)
	}
	if _, ok := base["BenchmarkWALAppend/wal-v1"]; !ok {
		t.Fatal("bench key not honored")
	}

	g := gate{tol: 0.25, ciMult: 3, minDelta: 0.05}
	measured := aggregate(parseBenchOutput(sampleOutput))
	report, regressions, missing := diff(base, measured, g, nil)

	// Single-run measurements against bare-number baselines take the flat
	// 25% rule: wal-v1 within tolerance; wal-v2 350 vs 250 = +40% ns
	// regression; replay throughput 7.7M vs 12M baseline = -36% regression;
	// BenchmarkRemoved has no measurement — counted separately so a renamed
	// benchmark can never make the gate vacuous.
	if regressions != 2 {
		t.Fatalf("want 2 regressions, got %d:\n%s", regressions, report)
	}
	if missing != 1 {
		t.Fatalf("want 1 missing measurement, got %d:\n%s", missing, report)
	}
	for _, want := range []string{
		"REGRESSION  BenchmarkWALAppend/wal-v2",
		"REGRESSION  BenchmarkWALReplay/v2",
		"MISSING     BenchmarkRemoved",
	} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
	if strings.Contains(report, "REGRESSION  BenchmarkWALAppend/wal-v1") {
		t.Fatalf("wal-v1 flagged despite being within tolerance:\n%s", report)
	}

	// Restricting to hardware-stable metrics (the CI runner mode) drops
	// the two ns/throughput regressions; only missing stays.
	reportHW, regressionsHW, missingHW := diff(base, measured, g,
		map[string]bool{"bytes_per_op": true, "allocs_per_op": true, "walbytes_per_sample": true})
	if regressionsHW != 0 || missingHW != 1 {
		t.Fatalf("metric allowlist: want 0 regressions / 1 missing, got %d / %d:\n%s", regressionsHW, missingHW, reportHW)
	}
	if strings.Contains(reportHW, "ns_per_op") {
		t.Fatalf("allowlist did not filter ns_per_op:\n%s", reportHW)
	}

	// Zero-alloc baseline: a nonzero measurement is always a regression.
	measured["BenchmarkWALAppend/wal-v1"]["allocs_per_op"] = stat{Median: 3, Runs: 1}
	_, regressions, _ = diff(base, measured, g, nil)
	if regressions != 3 {
		t.Fatalf("0 -> 3 allocs/op not flagged: got %d regressions", regressions)
	}
}

// TestDispersedBaselines covers the {"median","mad","runs"} baseline shape
// end-to-end through loadBaselines.
func TestDispersedBaselines(t *testing.T) {
	dir := t.TempDir()
	baseline := `{
	  "results": {
	    "tight": {"bench": "BenchmarkTight", "ns_op": {"median": 100.0, "mad": 1.0, "runs": 5}},
	    "noisy": {"bench": "BenchmarkNoisy", "ns_op": {"median": 100.0, "mad": 15.0, "runs": 5}}
	  }
	}`
	if err := os.WriteFile(filepath.Join(dir, "BENCH_d.json"), []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := loadBaselines(dir, "BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	s := base["BenchmarkTight"].metrics["ns_per_op"]
	if s.Median != 100 || s.MAD != 1 || s.Runs != 5 {
		t.Fatalf("dispersed baseline parsed as %+v", s)
	}
}

// TestIntervalGate exercises the confidence-interval rule directly: a 30%
// regression on a tight benchmark fails, the same shift on a noisy one
// whose intervals overlap passes, and a 10% slip the flat 25% rule would
// wave through fails when both intervals are tight.
func TestIntervalGate(t *testing.T) {
	g := gate{tol: 0.25, ciMult: 3, minDelta: 0.05}
	tight := func(med float64) stat { return stat{Median: med, MAD: 1, Runs: 5} }
	noisy := func(med float64) stat { return stat{Median: med, MAD: 15, Runs: 5} }

	// 30%-regressed, tight on both sides: [97,103] vs [127,133] disjoint.
	if st, _ := compare("ns_per_op", tight(100), tight(130), g); st != "REGRESSION" {
		t.Fatalf("tight 30%% regression = %s, want REGRESSION", st)
	}
	// Same 30% shift on a noisy benchmark: [55,145] vs [85,175] overlap —
	// the baseline's own jitter explains the delta.
	if st, _ := compare("ns_per_op", noisy(100), noisy(130), g); st != "ok" {
		t.Fatalf("noisy 30%% shift = %s, want ok (intervals overlap)", st)
	}
	// 10% slip, tight: flat 25%% would pass it, the interval gate must not.
	if st, _ := compare("ns_per_op", tight(100), tight(110), g); st != "REGRESSION" {
		t.Fatalf("tight 10%% regression = %s, want REGRESSION", st)
	}
	// Shift below the min-delta floor never fails, even with zero MAD.
	exact := func(med float64) stat { return stat{Median: med, Runs: 5} }
	if st, _ := compare("ns_per_op", exact(100), exact(103), g); st != "ok" {
		t.Fatalf("3%% shift under min-delta = %s, want ok", st)
	}
	// Throughput polarity: lower samples/s is worse.
	if st, _ := compare("samples_per_s", tight(1000), tight(700), g); st != "REGRESSION" {
		t.Fatalf("throughput drop = %s, want REGRESSION", st)
	}
	if st, _ := compare("samples_per_s", tight(1000), tight(1300), g); st != "improved" {
		t.Fatalf("throughput gain = %s, want improved", st)
	}
	// Either side single-run: flat fallback (10% passes at 25% tolerance).
	if st, _ := compare("ns_per_op", stat{Median: 100, Runs: 1}, tight(110), g); st != "ok" {
		t.Fatalf("legacy baseline 10%% shift = %s, want ok under flat fallback", st)
	}
	if st, _ := compare("ns_per_op", stat{Median: 100, Runs: 1}, tight(140), g); st != "REGRESSION" {
		t.Fatalf("legacy baseline 40%% shift = %s, want REGRESSION under flat fallback", st)
	}
}

// TestIntervalGateEndToEnd drives the same rule through diff() with a
// synthetic measured run, the shape the nightly job sees.
func TestIntervalGateEndToEnd(t *testing.T) {
	dir := t.TempDir()
	baseline := `{
	  "a": {"bench": "BenchmarkA", "ns_op": {"median": 1000.0, "mad": 10.0, "runs": 5}},
	  "b": {"bench": "BenchmarkB", "ns_op": {"median": 1000.0, "mad": 200.0, "runs": 5}}
	}`
	if err := os.WriteFile(filepath.Join(dir, "BENCH_e.json"), []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := loadBaselines(dir, "BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	// Both benchmarks measure 30% slower across 3 runs; A is tight, B's
	// baseline jitter swallows it.
	run := `
BenchmarkA-8  100  1290.0 ns/op
BenchmarkA-8  100  1300.0 ns/op
BenchmarkA-8  100  1310.0 ns/op
BenchmarkB-8  100  1290.0 ns/op
BenchmarkB-8  100  1300.0 ns/op
BenchmarkB-8  100  1310.0 ns/op
`
	report, regressions, missing := diff(base, aggregate(parseBenchOutput(run)), gate{tol: 0.25, ciMult: 3, minDelta: 0.05}, nil)
	if regressions != 1 || missing != 0 {
		t.Fatalf("want exactly the tight benchmark to regress, got %d regressions / %d missing:\n%s", regressions, missing, report)
	}
	if !strings.Contains(report, "REGRESSION  BenchmarkA") {
		t.Fatalf("BenchmarkA not flagged:\n%s", report)
	}
	if strings.Contains(report, "REGRESSION  BenchmarkB") {
		t.Fatalf("BenchmarkB flagged despite overlapping intervals:\n%s", report)
	}
}
