// Command benchdiff is the benchmark-regression gate: it runs the repo's
// benchmark suite (or parses a pre-recorded `go test -bench` output) and
// compares every measurement against the committed BENCH_*.json baselines,
// failing when a metric regressed beyond the tolerance.
//
// Baselines opt in per entry with an explicit "bench" key naming the
// benchmark exactly as `go test` prints it (minus the -GOMAXPROCS suffix),
// e.g. {"bench": "BenchmarkWALAppend/wal-v2", "ns_op": 310, ...}. Entries
// without a "bench" key (prose, shapes, historical "before" numbers) are
// ignored, so the JSON files stay free-form documents.
//
// Metric keys are canonicalized (ns_op == ns_per_op == "ns/op", bytes_op ==
// "B/op", allocs_op == "allocs/op"; custom b.ReportMetric units map by
// replacing "/" with "_per_", so "walbytes/sample" matches a baseline key
// "walbytes_per_sample"). Only metrics present on BOTH sides are compared.
// Metrics named *_per_s are throughputs (higher is better); everything else
// is a cost (lower is better).
//
// Usage:
//
//	go run ./tools/benchdiff                      # run + compare (slow)
//	go run ./tools/benchdiff -input bench.txt     # compare a recorded run
//	go run ./tools/benchdiff -tolerance 0.25 -out benchdiff.txt
//
// Exit status: 0 = no regressions, 1 = at least one regression, 2 = usage
// or execution error. Wired as `make benchdiff` and the nightly
// .github/workflows/bench.yml job (non-required; uploads the report as an
// artifact).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		baselines = flag.String("baselines", "BENCH_*.json", "glob of baseline JSON files (relative to -dir)")
		dir       = flag.String("dir", ".", "repo root holding the baseline files")
		bench     = flag.String("bench", "WAL|RangeQuery|QueryCache", "benchmark regexp passed to go test -bench")
		pkgs      = flag.String("pkgs", "./internal/tsdb/ ./internal/querycache/ .", "space-separated packages to benchmark")
		benchtime = flag.String("benchtime", "2s", "benchtime passed to go test")
		tolerance = flag.Float64("tolerance", 0.25, "allowed relative regression before failing (0.25 = 25%)")
		input     = flag.String("input", "", "parse this pre-recorded `go test -bench` output instead of running")
		out       = flag.String("out", "", "also write the report to this file")
		metrics   = flag.String("metrics", "", "comma-separated allowlist of canonical metrics to compare (e.g. bytes_per_op,allocs_per_op,walbytes_per_sample); empty compares all. Use the allowlist on CI runners whose hardware differs from the machine that recorded the baselines — absolute ns/op does not travel across boxes, byte and alloc counts do")
	)
	flag.Parse()
	var allow map[string]bool
	if *metrics != "" {
		allow = map[string]bool{}
		for _, m := range strings.Split(*metrics, ",") {
			allow[canonicalMetric(strings.TrimSpace(m))] = true
		}
	}

	base, err := loadBaselines(*dir, *baselines)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if len(base) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no baseline entries with a \"bench\" key found under %s/%s\n", *dir, *baselines)
		os.Exit(2)
	}

	var output []byte
	if *input != "" {
		output, err = os.ReadFile(*input)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
	} else {
		args := []string{"test", "-run", "^$", "-bench", *bench, "-benchtime", *benchtime, "-benchmem"}
		args = append(args, strings.Fields(*pkgs)...)
		cmd := exec.Command("go", args...)
		cmd.Dir = *dir
		cmd.Stderr = os.Stderr
		output, err = cmd.Output()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: go test -bench failed: %v\n%s\n", err, output)
			os.Exit(2)
		}
	}
	measured := parseBenchOutput(string(output))

	report, regressions, missing := diff(base, measured, *tolerance, allow)
	fmt.Print(report)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: write %s: %v\n", *out, err)
			os.Exit(2)
		}
	}
	// A baseline with no measurement fails the gate too: a renamed or
	// filtered-out benchmark would otherwise turn it silently vacuous —
	// the exact rot this tool exists to catch. Narrow comparisons are
	// still possible; prune or rename the baseline entry alongside the
	// benchmark.
	if regressions > 0 || missing > 0 {
		os.Exit(1)
	}
}

// baselineEntry is one opted-in benchmark baseline: canonical metric name ->
// expected value.
type baselineEntry struct {
	file    string
	metrics map[string]float64
}

// loadBaselines extracts every object carrying a "bench" key from the
// matching JSON files, walking arbitrarily nested documents.
func loadBaselines(dir, glob string) (map[string]baselineEntry, error) {
	files, err := filepath.Glob(filepath.Join(dir, glob))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	out := map[string]baselineEntry{}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		var doc any
		if err := json.Unmarshal(data, &doc); err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		collectBaselines(doc, filepath.Base(f), out)
	}
	return out, nil
}

func collectBaselines(v any, file string, out map[string]baselineEntry) {
	switch node := v.(type) {
	case map[string]any:
		if name, ok := node["bench"].(string); ok {
			entry := baselineEntry{file: file, metrics: map[string]float64{}}
			for k, raw := range node {
				if f, ok := raw.(float64); ok {
					entry.metrics[canonicalMetric(k)] = f
				}
			}
			if len(entry.metrics) > 0 {
				out[name] = entry
			}
		}
		for _, child := range node {
			collectBaselines(child, file, out)
		}
	case []any:
		for _, child := range node {
			collectBaselines(child, file, out)
		}
	}
}

// canonicalMetric maps the spelling zoo (ns_op / ns_per_op / "ns/op",
// bytes_op / "B/op", custom ReportMetric units) onto one namespace.
func canonicalMetric(k string) string {
	switch k {
	case "ns_op", "ns/op":
		return "ns_per_op"
	case "bytes_op", "B/op":
		return "bytes_per_op"
	case "allocs_op", "allocs/op":
		return "allocs_per_op"
	}
	return strings.ReplaceAll(k, "/", "_per_")
}

// higherIsBetter reports whether a canonical metric is a throughput.
func higherIsBetter(metric string) bool {
	return strings.HasSuffix(metric, "_per_s")
}

var benchLineRe = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parseBenchOutput extracts per-benchmark canonical metrics from `go test
// -bench` output.
func parseBenchOutput(out string) map[string]map[string]float64 {
	res := map[string]map[string]float64{}
	for _, line := range strings.Split(out, "\n") {
		m := benchLineRe.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := m[1]
		fields := strings.Fields(m[2])
		metrics := map[string]float64{}
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			metrics[canonicalMetric(fields[i+1])] = val
		}
		if len(metrics) > 0 {
			res[name] = metrics
		}
	}
	return res
}

// diff renders the comparison report, counting regressions beyond tol and
// baselines that produced no measurement at all. A non-nil allow set
// restricts which canonical metrics are compared.
func diff(base map[string]baselineEntry, measured map[string]map[string]float64, tol float64, allow map[string]bool) (string, int, int) {
	var b strings.Builder
	regressions, missing := 0, 0
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "benchdiff: tolerance %.0f%%\n\n", tol*100)
	for _, name := range names {
		entry := base[name]
		got, ok := measured[name]
		if !ok {
			fmt.Fprintf(&b, "MISSING     %-50s no measurement (baseline in %s)\n", name, entry.file)
			missing++
			continue
		}
		metrics := make([]string, 0, len(entry.metrics))
		for m := range entry.metrics {
			if allow != nil && !allow[m] {
				continue
			}
			if _, ok := got[m]; ok {
				metrics = append(metrics, m)
			}
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			want, have := entry.metrics[m], got[m]
			var rel float64
			switch {
			case want == 0:
				if have == 0 || higherIsBetter(m) {
					rel = 0
				} else {
					rel = 1 + tol // 0 -> nonzero cost: always a regression
				}
			case higherIsBetter(m):
				rel = (want - have) / want
			default:
				rel = (have - want) / want
			}
			status := "ok"
			switch {
			case rel > tol:
				status = "REGRESSION"
				regressions++
			case rel < -tol:
				status = "improved"
			}
			fmt.Fprintf(&b, "%-11s %-50s %-22s base=%-14.6g got=%-14.6g delta=%+.1f%%\n",
				status, name, m, want, have, signedDelta(rel, m))
		}
	}
	var extras []string
	for name := range measured {
		if _, ok := base[name]; !ok {
			extras = append(extras, name)
		}
	}
	sort.Strings(extras)
	if len(extras) > 0 {
		fmt.Fprintf(&b, "\nmeasured without baseline (informational): %s\n", strings.Join(extras, ", "))
	}
	fmt.Fprintf(&b, "\n%d regression(s), %d missing measurement(s)\n", regressions, missing)
	return b.String(), regressions, missing
}

// signedDelta reports the user-facing percentage change in the metric's own
// direction (positive = got bigger), independent of better/worse.
func signedDelta(rel float64, metric string) float64 {
	if higherIsBetter(metric) {
		return -rel * 100
	}
	return rel * 100
}
