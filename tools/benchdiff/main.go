// Command benchdiff is the benchmark-regression gate: it runs the repo's
// benchmark suite (or parses a pre-recorded `go test -bench` output) and
// compares every measurement against the committed BENCH_*.json baselines,
// failing when a metric regressed beyond what measurement noise explains.
//
// Baselines opt in per entry with an explicit "bench" key naming the
// benchmark exactly as `go test` prints it (minus the -GOMAXPROCS suffix),
// e.g. {"bench": "BenchmarkWALAppend/wal-v2", "ns_op": 310, ...}. Entries
// without a "bench" key (prose, shapes, historical "before" numbers) are
// ignored, so the JSON files stay free-form documents.
//
// Metric values come in two shapes:
//
//   - a bare number ("ns_op": 405.0) — a legacy single-run value with
//     unknown dispersion; it is gated with the flat -tolerance rule;
//   - an object ("ns_op": {"median": 405.0, "mad": 2.3, "runs": 5}) — the
//     median of `runs` repetitions with its median-absolute-deviation.
//
// When BOTH sides carry dispersion (baseline recorded with runs > 1 and
// benchdiff invoked with -count > 1), the gate is confidence-interval
// overlap instead of a blunt percentage: each side spans median ±
// ci-mult×MAD, and a metric only fails when the two intervals are disjoint
// in the worse direction AND the median moved more than -min-delta. A tight
// benchmark therefore catches a 10% slip that a 25% tolerance would wave
// through, while a noisy one is not failed for jitter its own baseline
// already exhibited. Either side lacking dispersion falls back to the flat
// -tolerance comparison on medians.
//
// Metric keys are canonicalized (ns_op == ns_per_op == "ns/op", bytes_op ==
// "B/op", allocs_op == "allocs/op"; custom b.ReportMetric units map by
// replacing "/" with "_per_", so "walbytes/sample" matches a baseline key
// "walbytes_per_sample"). Only metrics present on BOTH sides are compared.
// Metrics named *_per_s are throughputs (higher is better); everything else
// is a cost (lower is better).
//
// Usage:
//
//	go run ./tools/benchdiff -count 5             # run 5x + compare (slow)
//	go run ./tools/benchdiff -input bench.txt     # compare a recorded run
//	go run ./tools/benchdiff -count 5 -emit-stats # print medians/MADs for re-recording baselines
//
// Exit status: 0 = no regressions, 1 = at least one regression, 2 = usage
// or execution error. Wired as `make benchdiff` and the nightly
// .github/workflows/bench.yml job (non-required; uploads the report as an
// artifact).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		baselines = flag.String("baselines", "BENCH_*.json", "glob of baseline JSON files (relative to -dir)")
		dir       = flag.String("dir", ".", "repo root holding the baseline files")
		bench     = flag.String("bench", "WAL|RangeQuery|QueryCache|Telemetry|Block", "benchmark regexp passed to go test -bench")
		pkgs      = flag.String("pkgs", "./internal/tsdb/ ./internal/querycache/ ./internal/thanos/ .", "space-separated packages to benchmark")
		benchtime = flag.String("benchtime", "2s", "benchtime passed to go test")
		count     = flag.Int("count", 1, "benchmark repetitions (go test -count); > 1 yields medians with dispersion and enables the interval gate")
		tolerance = flag.Float64("tolerance", 0.25, "fallback flat tolerance when either side lacks dispersion (0.25 = 25%)")
		ciMult    = flag.Float64("ci-mult", 3, "half-width multiplier: each side's interval is median ± ci-mult×MAD")
		minDelta  = flag.Float64("min-delta", 0.05, "median shift below this relative floor never fails, however tight the intervals (guards zero-MAD metrics)")
		input     = flag.String("input", "", "parse this pre-recorded `go test -bench` output instead of running")
		out       = flag.String("out", "", "also write the report to this file")
		emitStats = flag.Bool("emit-stats", false, "print the measured {median, mad, runs} per benchmark as JSON and exit (for re-recording baselines)")
		metrics   = flag.String("metrics", "", "comma-separated allowlist of canonical metrics to compare (e.g. bytes_per_op,allocs_per_op,walbytes_per_sample); empty compares all. Use the allowlist on CI runners whose hardware differs from the machine that recorded the baselines — absolute ns/op does not travel across boxes, byte and alloc counts do")
	)
	flag.Parse()
	var allow map[string]bool
	if *metrics != "" {
		allow = map[string]bool{}
		for _, m := range strings.Split(*metrics, ",") {
			allow[canonicalMetric(strings.TrimSpace(m))] = true
		}
	}

	base, err := loadBaselines(*dir, *baselines)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if len(base) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no baseline entries with a \"bench\" key found under %s/%s\n", *dir, *baselines)
		os.Exit(2)
	}

	var output []byte
	if *input != "" {
		output, err = os.ReadFile(*input)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
	} else {
		args := []string{"test", "-run", "^$", "-bench", *bench, "-benchtime", *benchtime, "-count", strconv.Itoa(*count), "-benchmem"}
		args = append(args, strings.Fields(*pkgs)...)
		cmd := exec.Command("go", args...)
		cmd.Dir = *dir
		cmd.Stderr = os.Stderr
		output, err = cmd.Output()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: go test -bench failed: %v\n%s\n", err, output)
			os.Exit(2)
		}
	}
	measured := aggregate(parseBenchOutput(string(output)))

	if *emitStats {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(measured); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		return
	}

	report, regressions, missing := diff(base, measured, gate{tol: *tolerance, ciMult: *ciMult, minDelta: *minDelta}, allow)
	fmt.Print(report)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: write %s: %v\n", *out, err)
			os.Exit(2)
		}
	}
	// A baseline with no measurement fails the gate too: a renamed or
	// filtered-out benchmark would otherwise turn it silently vacuous —
	// the exact rot this tool exists to catch. Narrow comparisons are
	// still possible; prune or rename the baseline entry alongside the
	// benchmark.
	if regressions > 0 || missing > 0 {
		os.Exit(1)
	}
}

// stat is one metric's value with its measurement spread: the median of
// Runs repetitions and their median absolute deviation. Runs <= 1 (legacy
// bare-number baselines, single-run measurements) means the dispersion is
// unknown and only the flat-tolerance gate applies.
type stat struct {
	Median float64 `json:"median"`
	MAD    float64 `json:"mad"`
	Runs   int     `json:"runs"`
}

// gate bundles the comparison knobs.
type gate struct {
	tol      float64 // flat fallback tolerance
	ciMult   float64 // interval half-width = ciMult * MAD
	minDelta float64 // median-shift floor below which nothing fails
}

// baselineEntry is one opted-in benchmark baseline: canonical metric name ->
// expected stat.
type baselineEntry struct {
	file    string
	metrics map[string]stat
}

// loadBaselines extracts every object carrying a "bench" key from the
// matching JSON files, walking arbitrarily nested documents.
func loadBaselines(dir, glob string) (map[string]baselineEntry, error) {
	files, err := filepath.Glob(filepath.Join(dir, glob))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	out := map[string]baselineEntry{}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		var doc any
		if err := json.Unmarshal(data, &doc); err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		collectBaselines(doc, filepath.Base(f), out)
	}
	return out, nil
}

func collectBaselines(v any, file string, out map[string]baselineEntry) {
	switch node := v.(type) {
	case map[string]any:
		if name, ok := node["bench"].(string); ok {
			entry := baselineEntry{file: file, metrics: map[string]stat{}}
			for k, raw := range node {
				if s, ok := parseStat(raw); ok {
					entry.metrics[canonicalMetric(k)] = s
				}
			}
			if len(entry.metrics) > 0 {
				out[name] = entry
			}
		}
		for _, child := range node {
			collectBaselines(child, file, out)
		}
	case []any:
		for _, child := range node {
			collectBaselines(child, file, out)
		}
	}
}

// parseStat accepts the two baseline value shapes: a bare number (legacy,
// single run, unknown spread) or a {"median": ..., "mad": ..., "runs": ...}
// object.
func parseStat(raw any) (stat, bool) {
	switch val := raw.(type) {
	case float64:
		return stat{Median: val, Runs: 1}, true
	case map[string]any:
		med, ok := val["median"].(float64)
		if !ok {
			return stat{}, false
		}
		s := stat{Median: med, Runs: 1}
		if mad, ok := val["mad"].(float64); ok {
			s.MAD = mad
		}
		if runs, ok := val["runs"].(float64); ok {
			s.Runs = int(runs)
		}
		return s, true
	}
	return stat{}, false
}

// canonicalMetric maps the spelling zoo (ns_op / ns_per_op / "ns/op",
// bytes_op / "B/op", custom ReportMetric units) onto one namespace.
func canonicalMetric(k string) string {
	switch k {
	case "ns_op", "ns/op":
		return "ns_per_op"
	case "bytes_op", "B/op":
		return "bytes_per_op"
	case "allocs_op", "allocs/op":
		return "allocs_per_op"
	}
	return strings.ReplaceAll(k, "/", "_per_")
}

// higherIsBetter reports whether a canonical metric is a throughput.
func higherIsBetter(metric string) bool {
	return strings.HasSuffix(metric, "_per_s")
}

var benchLineRe = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parseBenchOutput extracts per-benchmark canonical metric samples from
// `go test -bench` output; with -count > 1 each benchmark contributes one
// sample per repetition.
func parseBenchOutput(out string) map[string]map[string][]float64 {
	res := map[string]map[string][]float64{}
	for _, line := range strings.Split(out, "\n") {
		m := benchLineRe.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := m[1]
		fields := strings.Fields(m[2])
		samples := res[name]
		if samples == nil {
			samples = map[string][]float64{}
			res[name] = samples
		}
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			k := canonicalMetric(fields[i+1])
			samples[k] = append(samples[k], val)
		}
	}
	for name, samples := range res {
		empty := true
		for _, v := range samples {
			if len(v) > 0 {
				empty = false
			}
		}
		if empty {
			delete(res, name)
		}
	}
	return res
}

// aggregate reduces raw samples to median + MAD per metric.
func aggregate(samples map[string]map[string][]float64) map[string]map[string]stat {
	out := map[string]map[string]stat{}
	for name, metrics := range samples {
		agg := map[string]stat{}
		for m, vals := range metrics {
			if len(vals) == 0 {
				continue
			}
			med := median(vals)
			devs := make([]float64, len(vals))
			for i, v := range vals {
				devs[i] = math.Abs(v - med)
			}
			agg[m] = stat{Median: med, MAD: median(devs), Runs: len(vals)}
		}
		if len(agg) > 0 {
			out[name] = agg
		}
	}
	return out
}

// median returns the middle value (mean of the middle two for even n)
// without mutating its input.
func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// compare gates one metric. rel is the relative change in the "worse"
// direction (positive = regressed), whatever the metric's polarity.
func compare(metric string, base, got stat, g gate) (status string, rel float64) {
	if base.Median == 0 {
		// 0 -> nonzero cost (e.g. allocs/op) is always a regression; a zero
		// or any throughput stays ok (nothing meaningful to divide by).
		if got.Median != 0 && !higherIsBetter(metric) {
			return "REGRESSION", math.Inf(1)
		}
		return "ok", 0
	}
	if higherIsBetter(metric) {
		rel = (base.Median - got.Median) / base.Median
	} else {
		rel = (got.Median - base.Median) / base.Median
	}
	if base.Runs > 1 && got.Runs > 1 {
		// Interval gate: fail only when the two median±ciMult×MAD spans are
		// disjoint in the worse direction and the shift clears the floor.
		baseLo, baseHi := base.Median-g.ciMult*base.MAD, base.Median+g.ciMult*base.MAD
		gotLo, gotHi := got.Median-g.ciMult*got.MAD, got.Median+g.ciMult*got.MAD
		worse, better := gotLo > baseHi, gotHi < baseLo
		if higherIsBetter(metric) {
			worse, better = gotHi < baseLo, gotLo > baseHi
		}
		switch {
		case worse && rel > g.minDelta:
			return "REGRESSION", rel
		case better && rel < -g.minDelta:
			return "improved", rel
		}
		return "ok", rel
	}
	// Legacy flat tolerance: one side has no dispersion to reason with.
	switch {
	case rel > g.tol:
		return "REGRESSION", rel
	case rel < -g.tol:
		return "improved", rel
	}
	return "ok", rel
}

// fmtStat renders "405±2.1(n5)" for dispersed values, a bare number for
// single-run ones.
func fmtStat(s stat) string {
	if s.Runs > 1 {
		return fmt.Sprintf("%.6g±%.3g(n%d)", s.Median, s.MAD, s.Runs)
	}
	return fmt.Sprintf("%.6g", s.Median)
}

// diff renders the comparison report, counting regressions and baselines
// that produced no measurement at all. A non-nil allow set restricts which
// canonical metrics are compared.
func diff(base map[string]baselineEntry, measured map[string]map[string]stat, g gate, allow map[string]bool) (string, int, int) {
	var b strings.Builder
	regressions, missing := 0, 0
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "benchdiff: interval gate median±%.3g×MAD (min-delta %.0f%%), flat fallback %.0f%%\n\n",
		g.ciMult, g.minDelta*100, g.tol*100)
	for _, name := range names {
		entry := base[name]
		got, ok := measured[name]
		if !ok {
			fmt.Fprintf(&b, "MISSING     %-50s no measurement (baseline in %s)\n", name, entry.file)
			missing++
			continue
		}
		metrics := make([]string, 0, len(entry.metrics))
		for m := range entry.metrics {
			if allow != nil && !allow[m] {
				continue
			}
			if _, ok := got[m]; ok {
				metrics = append(metrics, m)
			}
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			want, have := entry.metrics[m], got[m]
			status, rel := compare(m, want, have, g)
			if status == "REGRESSION" {
				regressions++
			}
			fmt.Fprintf(&b, "%-11s %-50s %-22s base=%-20s got=%-20s delta=%+.1f%%\n",
				status, name, m, fmtStat(want), fmtStat(have), signedDelta(rel, m))
		}
	}
	var extras []string
	for name := range measured {
		if _, ok := base[name]; !ok {
			extras = append(extras, name)
		}
	}
	sort.Strings(extras)
	if len(extras) > 0 {
		fmt.Fprintf(&b, "\nmeasured without baseline (informational): %s\n", strings.Join(extras, ", "))
	}
	fmt.Fprintf(&b, "\n%d regression(s), %d missing measurement(s)\n", regressions, missing)
	return b.String(), regressions, missing
}

// signedDelta reports the user-facing percentage change in the metric's own
// direction (positive = got bigger), independent of better/worse.
func signedDelta(rel float64, metric string) float64 {
	if higherIsBetter(metric) {
		return -rel * 100
	}
	return rel * 100
}
