// Repository-level benchmarks: one per table/figure/claim in the paper's
// evaluation (see the experiment index in DESIGN.md). Each benchmark drives
// the same code paths as the corresponding ceems_bench experiment; the
// experiments print the tables, the benchmarks measure the machinery.
package repro

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/emissions"
	"repro/internal/exporter"
	"repro/internal/hw"
	"repro/internal/labels"
	"repro/internal/model"
	"repro/internal/promql"
	"repro/internal/relstore"
	"repro/internal/resourcemanager"
	"repro/internal/rules"
	"repro/internal/rules/ceemsrules"
	"repro/internal/slurmsim"
	"repro/internal/tsdb"
)

var benchStart = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// BenchmarkEq1Attribution — E2: the Eq. 1 estimator itself.
func BenchmarkEq1Attribution(b *testing.B) {
	est := core.IntelVariant()
	node := core.NodeSample{
		IPMIWatts: 850, RAPLCPUWatts: 400, RAPLDRAMWatts: 100,
		CPURate: 48, MemBytes: 128e9, NumUnits: 8,
	}
	units := make([]core.UnitSample, 8)
	for i := range units {
		units[i] = core.UnitSample{CPURate: 6, MemBytes: 16e9}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := est.AttributeAll(node, units); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExporterScrape — E6: one full exporter collect+render pass on a
// busy node (the paper's 15-20 MB / low-CPU claim).
func BenchmarkExporterScrape(b *testing.B) {
	node, err := hw.NewNode(hw.DefaultIntelSpec("bench"), benchStart)
	if err != nil {
		b.Fatal(err)
	}
	for j := 0; j < 16; j++ {
		node.AddWorkload(&hw.Workload{
			ID: fmt.Sprintf("job_%d", j), CPUs: 4, MemLimit: 8 << 30,
		})
	}
	node.Advance(15 * time.Second)
	exp := exporter.New(
		&exporter.CgroupCollector{FS: node.FS, Layout: exporter.SlurmLayout()},
		&exporter.RAPLCollector{FS: node.FS},
		&exporter.IPMICollector{Reader: node},
		&exporter.NodeCollector{FS: node.FS},
	)
	b.ReportAllocs()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(exp.Render())
	}
	b.SetBytes(int64(n))
}

// BenchmarkRulesEvalNode — E8: one evaluation of the full Intel Eq. 1 rule
// group over a populated node.
func BenchmarkRulesEvalNode(b *testing.B) {
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	// 8 units × (cpu + mem) + node metrics, 20 scrapes.
	for i := int64(0); i < 20; i++ {
		ts := i * 15000
		for u := 0; u < 8; u++ {
			db.Append(labels.FromStrings(labels.MetricName, "ceems_compute_unit_cpu_usage_seconds_total",
				"uuid", fmt.Sprintf("%d", u), "instance", "n1", "nodeclass", "intel"), ts, float64(i)*30)
			db.Append(labels.FromStrings(labels.MetricName, "ceems_compute_unit_memory_used_bytes",
				"uuid", fmt.Sprintf("%d", u), "instance", "n1", "nodeclass", "intel"), ts, 8e9)
		}
		db.Append(labels.FromStrings(labels.MetricName, "ceems_ipmi_dcmi_current_watts", "instance", "n1", "nodeclass", "intel"), ts, 500)
		db.Append(labels.FromStrings(labels.MetricName, "ceems_rapl_package_joules_total", "instance", "n1", "nodeclass", "intel", "index", "0"), ts, float64(i)*3000)
		db.Append(labels.FromStrings(labels.MetricName, "ceems_rapl_dram_joules_total", "instance", "n1", "nodeclass", "intel", "index", "0"), ts, float64(i)*500)
		for _, mode := range []string{"user", "system", "idle"} {
			db.Append(labels.FromStrings(labels.MetricName, "ceems_cpu_seconds_total", "instance", "n1", "nodeclass", "intel", "mode", mode), ts, float64(i)*100)
		}
		for _, f := range []string{"MemTotal", "MemAvailable"} {
			v := 256e9
			if f == "MemAvailable" {
				v = 192e9
			}
			db.Append(labels.FromStrings(labels.MetricName, "ceems_meminfo_bytes", "instance", "n1", "nodeclass", "intel", "field", f), ts, v)
		}
		db.Append(labels.FromStrings(labels.MetricName, "ceems_compute_units", "instance", "n1", "nodeclass", "intel"), ts, 8)
	}
	g := ceemsrules.IntelGroup(ceemsrules.DefaultOptions())
	eng := rules.NewEngine(nil)
	sink := tsdb.MustOpen(tsdb.DefaultOptions())
	ts := model.MillisToTime(19 * 15000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.EvalGroup(g, db, shiftedAppender{sink, int64(i)}, ts); err != nil {
			b.Fatal(err)
		}
	}
}

type shiftedAppender struct {
	db  *tsdb.DB
	off int64
}

func (s shiftedAppender) Append(l labels.Labels, t int64, v float64) error {
	return s.db.Append(l, t+s.off, v)
}

// BenchmarkTSDBIngestFleet — E7 ingest path: appending one scrape's worth
// of samples for a 100-node fleet.
func BenchmarkTSDBIngestFleet(b *testing.B) {
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	const nodes = 100
	const seriesPerNode = 40
	sets := make([]labels.Labels, 0, nodes*seriesPerNode)
	for n := 0; n < nodes; n++ {
		for s := 0; s < seriesPerNode; s++ {
			sets = append(sets, labels.FromStrings(
				labels.MetricName, fmt.Sprintf("metric_%d", s),
				"instance", fmt.Sprintf("node%03d", n)))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := int64(i) * 15000
		for _, ls := range sets {
			db.Append(ls, ts, float64(i))
		}
	}
	b.ReportMetric(float64(len(sets)), "samples/op")
}

// BenchmarkShardedAppendParallel measures head append throughput under
// goroutine parallelism (b.RunParallel scales with -cpu). Each goroutine
// writes its own series set with monotonically increasing timestamps, the
// exporter-fleet ingest shape. With the lock-striped head, ns/op should
// drop materially from -cpu 1 to -cpu 8 on multicore hardware; the old
// global-RWMutex head flatlined here. Shards is pinned (not GOMAXPROCS)
// so the striping is exercised identically on any host.
func BenchmarkShardedAppendParallel(b *testing.B) {
	opts := tsdb.DefaultOptions()
	opts.Shards = 16
	db := tsdb.MustOpen(opts)
	var worker atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		id := worker.Add(1)
		const seriesPerWorker = 64
		sets := make([]labels.Labels, seriesPerWorker)
		for i := range sets {
			sets[i] = labels.FromStrings(
				labels.MetricName, fmt.Sprintf("metric_%d", i),
				"instance", fmt.Sprintf("w%03d", id))
		}
		ts := int64(0)
		i := 0
		for pb.Next() {
			if i%seriesPerWorker == 0 {
				ts += 15000
			}
			if err := db.Append(sets[i%seriesPerWorker], ts, float64(i)); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// BenchmarkShardedSelectParallel measures concurrent query fan-out over the
// sharded head: many goroutines issuing Selects at once, the CEEMS LB shape
// where Grafana dashboards fan user panels across the cluster.
func BenchmarkShardedSelectParallel(b *testing.B) {
	opts := tsdb.DefaultOptions()
	opts.Shards = 16
	db := tsdb.MustOpen(opts)
	for n := 0; n < 200; n++ {
		for s := 0; s < 20; s++ {
			ls := labels.FromStrings(
				labels.MetricName, fmt.Sprintf("metric_%d", s),
				"instance", fmt.Sprintf("node%03d", n))
			for j := int64(0); j < 50; j++ {
				if err := db.Append(ls, j*15000, float64(j)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			m := labels.MustMatcher(labels.MatchEqual, labels.MetricName,
				fmt.Sprintf("metric_%d", i%20))
			res, err := db.Select(0, 1<<60, m)
			if err != nil {
				b.Error(err)
				return
			}
			if len(res) != 200 {
				b.Errorf("got %d series", len(res))
				return
			}
			i++
		}
	})
}

// BenchmarkAPIServerUpdate — E7/A3: one aggregation pass of the API server
// over a churn-heavy scheduler (the 20k jobs/day shape).
func BenchmarkAPIServerUpdate(b *testing.B) {
	var nodes []*hw.Node
	for i := 0; i < 8; i++ {
		n, _ := hw.NewNode(hw.DefaultIntelSpec(fmt.Sprintf("n%d", i)), benchStart)
		nodes = append(nodes, n)
	}
	sched, err := slurmsim.NewScheduler("bench", benchStart, &slurmsim.Partition{Name: "cpu", Nodes: nodes})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		sched.Submit(slurmsim.JobSpec{
			Name: "j", User: fmt.Sprintf("u%d", i%20), Account: fmt.Sprintf("p%d", i%5),
			Partition: "cpu", CPUsPerNode: 8, MemPerNode: 4 << 30,
			Duration: time.Duration(1+i%10) * time.Minute,
		})
	}
	for i := 0; i < 80; i++ {
		sched.Advance(15 * time.Second)
	}
	store, _ := relstore.Open("")
	for _, s := range api.Schemas() {
		store.CreateTable(s)
	}
	up := &api.Updater{
		Store: store,
		Fetchers: []resourcemanager.Fetcher{
			&resourcemanager.Local{Cluster: "bench", Kind: model.ManagerSLURM, Source: sched},
		},
		Query:  tsdb.MustOpen(tsdb.DefaultOptions()),
		Factor: emissions.OWID{},
		Zone:   "FR",
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := up.Update(ctx, benchStart.Add(time.Duration(80+i)*15*time.Second)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPromQLEq1Query — E5 query path: an instant Eq. 1-style join.
func BenchmarkPromQLEq1Query(b *testing.B) {
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	for n := 0; n < 50; n++ {
		inst := fmt.Sprintf("n%02d", n)
		for i := int64(0); i < 40; i++ {
			db.Append(labels.FromStrings(labels.MetricName, "ipmi_watts", "instance", inst), i*15000, 500)
			db.Append(labels.FromStrings(labels.MetricName, "rapl_cpu_joules_total", "instance", inst), i*15000, float64(i)*6000)
			db.Append(labels.FromStrings(labels.MetricName, "rapl_dram_joules_total", "instance", inst), i*15000, float64(i)*900)
		}
	}
	eng := promql.NewEngine()
	q := `0.9 * ipmi_watts * on (instance) (rate(rapl_cpu_joules_total[2m]) / (rate(rapl_cpu_joules_total[2m]) + rate(rapl_dram_joules_total[2m])))`
	ts := model.MillisToTime(39 * 15000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := eng.Instant(db, q, ts)
		if err != nil {
			b.Fatal(err)
		}
		if len(v.(promql.Vector)) != 50 {
			b.Fatal("wrong result size")
		}
	}
}

// rangeBenchDB seeds a head with `series` distinct counter series, one
// sample every intervalMs over spanMs.
func rangeBenchDB(b *testing.B, series int, intervalMs, spanMs int64) *tsdb.DB {
	b.Helper()
	db := tsdb.MustOpen(tsdb.DefaultOptions())
	for s := 0; s < series; s++ {
		ls := labels.FromStrings(
			labels.MetricName, "bench_requests_total",
			"instance", fmt.Sprintf("node%04d", s%(series/4+1)),
			"shard", fmt.Sprintf("%d", s))
		for ts := int64(0); ts <= spanMs; ts += intervalMs {
			if err := db.Append(ls, ts, float64(ts)/1000); err != nil {
				b.Fatal(err)
			}
		}
	}
	return db
}

func benchRangeQuery(b *testing.B, db *tsdb.DB, q string, spanMs, stepMs int64, wantSeries int) {
	b.Helper()
	eng := promql.NewEngine()
	start := model.MillisToTime(0)
	end := model.MillisToTime(spanMs)
	step := time.Duration(stepMs) * time.Millisecond
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := eng.Range(db, q, start, end, step)
		if err != nil {
			b.Fatal(err)
		}
		if len(m) != wantSeries {
			b.Fatalf("got %d series, want %d", len(m), wantSeries)
		}
	}
}

// BenchmarkRangeQuerySparse — a Grafana-style panel over sparse data: few
// series, one sample per minute, queried at a 15 s step over 2 h (the steps
// far outnumber the samples).
func BenchmarkRangeQuerySparse(b *testing.B) {
	const spanMs = 2 * 3600 * 1000
	db := rangeBenchDB(b, 8, 60_000, spanMs)
	benchRangeQuery(b, db, `rate(bench_requests_total[5m])`, spanMs, 15_000, 8)
}

// BenchmarkRangeQueryDense — dense scrape cadence (15 s) with an aggregation
// over a rate, queried over 1 h at the scrape step.
func BenchmarkRangeQueryDense(b *testing.B) {
	const spanMs = 3600 * 1000
	db := rangeBenchDB(b, 64, 15_000, spanMs)
	benchRangeQuery(b, db, `sum by (instance) (rate(bench_requests_total[2m]))`, spanMs, 15_000, 17)
}

// BenchmarkRangeQueryHighCardinality — many series, short window: the
// per-step Select tax is dominated by postings/merge overhead.
func BenchmarkRangeQueryHighCardinality(b *testing.B) {
	const spanMs = 15 * 60 * 1000
	db := rangeBenchDB(b, 2000, 30_000, spanMs)
	benchRangeQuery(b, db, `sum(rate(bench_requests_total[2m]))`, spanMs, 30_000, 1)
}

// BenchmarkClusterStep — E7: one 15 s step of the full simulated platform
// at 1/10 Jean-Zay scale (~140 nodes).
func BenchmarkClusterStep(b *testing.B) {
	topo := cluster.JeanZay(0.1)
	sim, err := cluster.New(topo, cluster.DefaultOptions(), 50, 10, 20000)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	sim.Step(ctx) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step(ctx)
	}
	b.ReportMetric(float64(topo.TotalNodes()), "nodes")
}

// BenchmarkEmissionsFactor — E9: cached factor lookups.
func BenchmarkEmissionsFactor(b *testing.B) {
	c := &emissions.Cached{Provider: emissions.OWID{}, TTL: time.Minute}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Factor(ctx, "FR"); err != nil {
			b.Fatal(err)
		}
	}
}
